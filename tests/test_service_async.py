"""Tests for the async serving layer: worker dispatch, the cross-drain
result cache, and the durable registry.

Three contracts carry this PR:

* **Async invisibility** — background worker dispatch is invisible to
  the released bits: any interleaving of concurrent ``submit()`` and
  worker scans produces per-job weights bitwise-identical to the
  synchronous single-threaded drain (``np.array_equal``, atol=0), and
  ``submit()`` never blocks on a running scan.
* **Cache soundness** — resubmitting a completed job is a hit: 0 page
  requests, 0 ε re-spend, identical weights; anything that could change
  a single released float (seed, ε, candidate, table contents) misses.
* **Durability** — snapshot → load → resume round-trips records
  bitwise, reconciles budgets from committed receipts (over-budget jobs
  still rejected), re-arms the cache, and marks in-flight work FAILED.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accountant import would_overflow
from repro.optim.losses import LogisticLoss
from repro.service import JobStatus, ModelRegistry, TrainingService
from tests.conftest import make_binary_data

M, D = 300, 8
EPS = 0.05
X, Y = make_binary_data(M, D, seed=21)


def make_service(
    workers: int = 2,
    cap: float = 10.0,
    state_dir=None,
    fuse: bool = True,
    window: int = 32,
    **kwargs,
) -> TrainingService:
    service = TrainingService(
        fuse=fuse,
        scan_seed=5,
        batching_window=window,
        workers=workers,
        state_dir=state_dir,
        **kwargs,
    )
    service.register_table("t", X, Y)
    service.open_budget("alice", "t", cap)
    service.open_budget("bob", "t", cap)
    return service


def mixed_jobs(n: int = 8):
    return [
        dict(
            principal="alice" if j % 2 == 0 else "bob",
            loss=LogisticLoss(regularization=[1e-4, 1e-3, 1e-2][j % 3]),
            epsilon=EPS,
            passes=2,
            batch_size=25,
            seed=900 + j,
        )
        for j in range(n)
    ]


def submit_all(service: TrainingService, jobs):
    return [
        service.submit(job["principal"], "t", job["loss"], epsilon=job["epsilon"],
                       passes=job["passes"], batch_size=job["batch_size"],
                       seed=job["seed"])
        for job in jobs
    ]


def sync_reference(jobs) -> dict:
    """{seed: weights} from the single-threaded reference dispatch."""
    service = make_service(workers=1)
    records = submit_all(service, jobs)
    service.scheduler.run_pending()
    assert all(record.status is JobStatus.COMPLETED for record in records)
    return {record.job.seed: record.model for record in records}


class SlowLoss(LogisticLoss):
    """A logistic loss whose gradients stall — makes scans take long
    enough that submit-vs-scan overlap is observable."""

    def batch_gradient(self, w, X_batch, y_batch):
        time.sleep(0.005)
        return super().batch_gradient(w, X_batch, y_batch)


X2, Y2 = make_binary_data(M, D, seed=22)


def make_two_table_service(
    workers: int = 2, cap: float = 10.0, parallel_scans: bool = True, **kwargs
) -> TrainingService:
    service = make_service(
        workers=workers, cap=cap, parallel_scans=parallel_scans, **kwargs
    )
    service.register_table("u", X2, Y2)
    service.open_budget("alice", "u", cap)
    service.open_budget("bob", "u", cap)
    return service


def cross_table_jobs(n: int = 12, slow: bool = False):
    loss_type = SlowLoss if slow else LogisticLoss
    return [
        dict(
            principal="alice" if j % 2 == 0 else "bob",
            table="t" if j % 2 == 0 else "u",
            loss=loss_type(regularization=[1e-4, 1e-3, 1e-2][j % 3]),
            epsilon=EPS,
            passes=2,
            batch_size=25,
            seed=3000 + j,
        )
        for j in range(n)
    ]


def submit_cross(service: TrainingService, jobs):
    return [
        service.submit(job["principal"], job["table"], job["loss"],
                       epsilon=job["epsilon"], passes=job["passes"],
                       batch_size=job["batch_size"], seed=job["seed"])
        for job in jobs
    ]


class TestAsyncDispatch:
    def test_worker_drain_bitwise_equals_sync(self):
        jobs = mixed_jobs()
        reference = sync_reference(jobs)
        service = make_service(workers=4)
        records = submit_all(service, jobs)
        finished = service.drain()
        assert len(finished) == len(jobs)
        for record in records:
            assert record.status is JobStatus.COMPLETED
            assert np.array_equal(record.model, reference[record.job.seed])

    def test_continuous_server_mode(self):
        """start() once, submit over time, wait on handles, stop()."""
        jobs = mixed_jobs()
        reference = sync_reference(jobs)
        service = make_service(workers=2).start()
        try:
            records = []
            for job in jobs:
                records.append(submit_all(service, [job])[0])
            for record in records:
                assert record.wait(timeout=30.0)
                assert record.done
                assert np.array_equal(record.model, reference[record.job.seed])
        finally:
            service.stop()

    def test_submit_never_blocks_on_a_running_scan(self):
        service = make_service(workers=1).start()
        try:
            slow = service.submit("alice", "t", SlowLoss(1e-3), epsilon=EPS,
                                  passes=2, batch_size=25, seed=1)
            deadline = time.monotonic() + 10.0
            while service.status(slow.job_id) is JobStatus.QUEUED:
                assert time.monotonic() < deadline, "slow job never started"
                time.sleep(0.002)
            # The scan is in flight on the worker; submissions must
            # return without waiting for it.
            start = time.monotonic()
            quick = [
                service.submit("bob", "t", LogisticLoss(1e-3), epsilon=EPS,
                               passes=2, batch_size=25, seed=100 + j)
                for j in range(5)
            ]
            elapsed = time.monotonic() - start
            # The slow scan takes >= 2 * (300/25) * 5ms = 120ms; five
            # admissions are pure bookkeeping and finish far faster.
            assert elapsed < 0.1, f"submit() blocked for {elapsed:.3f}s"
            assert service.status(slow.job_id) in (
                JobStatus.RUNNING, JobStatus.COMPLETED
            )
            for record in quick:
                assert record.wait(timeout=30.0)
                assert record.status is JobStatus.COMPLETED
            assert slow.wait(timeout=30.0)
        finally:
            service.stop()

    def test_drain_returns_only_new_terminals(self):
        service = make_service(workers=2)
        first = submit_all(service, mixed_jobs(4))
        assert len(service.drain()) == 4
        submit_all(service, mixed_jobs(2))  # seeds 900, 901 -> cache hits
        more = [
            service.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                           passes=2, batch_size=25, seed=7000 + j)
            for j in range(3)
        ]
        second = service.drain()
        # Cache hits are terminal at submit and never dispatched, so the
        # drain reports exactly the three fresh jobs.
        assert {record.job_id for record in second} == {
            record.job_id for record in more
        }
        assert all(record.job_id not in {f.job_id for f in first}
                   for record in second)

    def test_wait_timeout_returns_false(self):
        service = make_service(workers=1)
        record = service.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                                passes=1, batch_size=25, seed=3)
        assert record.wait(timeout=0.0) is False
        assert not record.done
        service.drain()
        assert record.wait(timeout=0.0) is True

    def test_concurrent_submitters_and_workers_stay_bitwise(self):
        """3 submitter threads racing 2 workers: same bits as sync."""
        jobs = mixed_jobs(12)
        reference = sync_reference(jobs)
        service = make_service(workers=2).start()
        try:
            records, errors = [], []
            lock = threading.Lock()

            def submitter(chunk):
                try:
                    for job in chunk:
                        record = submit_all(service, [job])[0]
                        with lock:
                            records.append(record)
                except Exception as error:  # pragma: no cover - fail loud
                    errors.append(error)

            threads = [
                threading.Thread(target=submitter, args=(jobs[i::3],))
                for i in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            for record in records:
                assert record.wait(timeout=30.0)
                assert np.array_equal(record.model, reference[record.job.seed])
        finally:
            service.stop()


class TestWorkerRaceLedger:
    @settings(max_examples=8, deadline=None)
    @given(
        epsilons=st.lists(
            st.floats(min_value=0.01, max_value=0.30, allow_nan=False),
            min_size=4,
            max_size=16,
        )
    )
    def test_concurrent_submit_plus_dispatch_never_overspends(self, epsilons):
        """spent + reserved <= cap at every sampled instant, and the
        final spend is exactly the committed jobs' total — under real
        submit/worker races (2 submitter threads + 2 worker threads)."""
        cap = 0.5
        service = make_service(workers=2, cap=cap)
        service.start()
        violations: list = []
        stop_sampling = threading.Event()

        def sampler():
            while not stop_sampling.is_set():
                for statement in service.budgets():
                    if would_overflow(
                        statement.cap,
                        statement.spent[0] + statement.reserved[0],
                        statement.spent[1] + statement.reserved[1],
                    ):
                        violations.append(statement)
                time.sleep(0.001)

        records: list = []
        lock = threading.Lock()

        def submitter(chunk, base_seed):
            for index, epsilon in enumerate(chunk):
                record = service.submit(
                    "alice", "t", LogisticLoss(1e-3), epsilon=float(epsilon),
                    passes=1, batch_size=25, seed=base_seed + index,
                )
                with lock:
                    records.append(record)

        sampler_thread = threading.Thread(target=sampler)
        sampler_thread.start()
        try:
            submitters = [
                threading.Thread(target=submitter, args=(epsilons[i::2], 10_000 * (i + 1)))
                for i in range(2)
            ]
            for thread in submitters:
                thread.start()
            for thread in submitters:
                thread.join()
            assert service.loop.wait_quiescent(timeout=60.0)
        finally:
            stop_sampling.set()
            sampler_thread.join()
            service.stop()

        assert not violations, f"ledger overspent under race: {violations[:3]}"
        committed = sum(
            record.receipt.parameters.epsilon
            for record in records
            if record.status is JobStatus.COMPLETED
        )
        statement = [s for s in service.budgets() if s.principal == "alice"][0]
        assert statement.spent[0] == pytest.approx(committed)
        assert not would_overflow(statement.cap, statement.spent[0], statement.spent[1])
        assert statement.reserved == (0.0, 0.0)
        for record in records:
            assert record.status in (
                JobStatus.COMPLETED, JobStatus.REJECTED
            ), record.error
            if record.status is JobStatus.REJECTED:
                assert record.receipt is None


class TestResultCache:
    def test_resubmission_is_a_zero_cost_hit(self):
        service = make_service(workers=2)
        jobs = mixed_jobs()
        originals = submit_all(service, jobs)
        service.drain()
        pages = service.page_reads
        spent = {s.principal: s.spent for s in service.budgets()}

        replays = submit_all(service, jobs)
        for original, replay in zip(originals, replays):
            assert replay.status is JobStatus.COMPLETED
            assert replay.done  # terminal at submit, no drain needed
            assert replay.dispatch == "cached"
            assert replay.cache_source == original.job_id
            assert replay.group_pages == 0
            assert replay.receipt is None
            assert np.array_equal(replay.model, original.model)
        assert service.page_reads == pages, "cache hits touched pages"
        assert {s.principal: s.spent for s in service.budgets()} == spent
        assert service.scheduler.cache.hits == len(jobs)

    def test_any_release_relevant_change_misses(self):
        service = make_service(workers=1)
        base = dict(epsilon=EPS, passes=2, batch_size=25, seed=77)
        service.submit("alice", "t", LogisticLoss(1e-3), **base)
        service.drain()
        variants = [
            ("seed", dict(base, seed=78)),
            ("epsilon", dict(base, epsilon=EPS / 2)),
            ("passes", dict(base, passes=1)),
            ("batch_size", dict(base, batch_size=50)),
        ]
        for name, params in variants:
            record = service.submit("alice", "t", LogisticLoss(1e-3), **params)
            assert record.status is JobStatus.QUEUED, f"{name} should miss"
        miss = service.submit("alice", "t", LogisticLoss(1e-2), **base)
        assert miss.status is JobStatus.QUEUED, "loss change should miss"
        service.drain()

    def test_hit_is_shared_across_principals(self):
        """The release is principal-independent, so bob's identical job
        hits alice's entry — and spends nothing from *his* account."""
        service = make_service(workers=1)
        alice = service.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                               passes=2, batch_size=25, seed=5)
        service.drain()
        bob = service.submit("bob", "t", LogisticLoss(1e-3), epsilon=EPS,
                             passes=2, batch_size=25, seed=5)
        assert bob.dispatch == "cached"
        assert np.array_equal(bob.model, alice.model)
        bob_statement = [s for s in service.budgets() if s.principal == "bob"][0]
        assert bob_statement.spent == (0, 0)

    def test_hit_requires_a_ledger_account(self):
        """A hit is a free re-release, not an access grant: a principal
        with no account on the table is REJECTED even when an identical
        release sits in the cache."""
        service = make_service(workers=1)
        alice = service.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                               passes=2, batch_size=25, seed=5)
        service.drain()
        mallory = service.submit("mallory", "t", LogisticLoss(1e-3),
                                 epsilon=EPS, passes=2, batch_size=25, seed=5)
        assert mallory.status is JobStatus.REJECTED
        assert mallory.model is None
        assert "no budget account" in mallory.error
        assert alice.status is JobStatus.COMPLETED

    def test_hit_records_are_mutation_isolated(self):
        """Tenants get their own array: scribbling on one served result
        must not corrupt the cache or other tenants' hits."""
        service = make_service(workers=1)
        original = service.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                                  passes=2, batch_size=25, seed=5)
        service.drain()
        first = service.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                               passes=2, batch_size=25, seed=5)
        first.model[:] = 0.0  # a tenant normalizes "their" weights in place
        second = service.submit("bob", "t", LogisticLoss(1e-3), epsilon=EPS,
                                passes=2, batch_size=25, seed=5)
        assert np.array_equal(second.model, original.model)
        assert not np.array_equal(second.model, first.model)

    def test_virtual_heaps_are_uncacheable_not_scanned(self):
        """A generator-backed heap has no cheap content identity, so its
        jobs are never cached — and registering it must not trigger a
        full-table fingerprint synthesis."""
        from repro.rdbms.storage import VirtualHeapFile, tuples_per_page

        per_page = tuples_per_page(D)
        synthesized = []

        def page(page_id, count, dim):
            synthesized.append(page_id)
            rows = slice(page_id * per_page, page_id * per_page + count)
            return X[rows], Y[rows]

        service = make_service(workers=1)
        service.register_table("v", heap=VirtualHeapFile(M, D, page))
        assert synthesized == []  # registration stayed metadata-only
        service.open_budget("alice", "v", 10.0)
        first = service.submit("alice", "v", LogisticLoss(1e-3), epsilon=EPS,
                               passes=1, batch_size=25, seed=2)
        service.drain()
        assert first.status is JobStatus.COMPLETED
        again = service.submit("alice", "v", LogisticLoss(1e-3), epsilon=EPS,
                               passes=1, batch_size=25, seed=2)
        assert again.status is JobStatus.QUEUED  # no fingerprint, no hit
        service.drain()
        assert np.array_equal(again.model, first.model)  # still deterministic

    def test_unhashable_loss_state_is_not_cached(self):
        service = make_service(workers=1)
        loss = LogisticLoss(1e-3)
        loss.opaque_state = [1.0, 2.0]  # kills fusion_key -> uncacheable
        first = service.submit("alice", "t", loss, epsilon=EPS,
                               passes=2, batch_size=25, seed=9)
        service.drain()
        assert first.status is JobStatus.COMPLETED
        again = service.submit("alice", "t", loss, epsilon=EPS,
                               passes=2, batch_size=25, seed=9)
        assert again.status is JobStatus.QUEUED  # trains again, no hit
        service.drain()
        assert again.status is JobStatus.COMPLETED


class TestDurableRegistry:
    def test_snapshot_load_roundtrip_is_bitwise(self, tmp_path):
        service = make_service(workers=2)
        records = submit_all(service, mixed_jobs())
        service.drain()
        path = tmp_path / "registry.json"
        service.registry.snapshot(path)

        loaded = ModelRegistry.load(path)
        assert len(loaded) == len(service.registry)
        for record in records:
            twin = loaded.get(record.job_id)
            assert twin.status is record.status
            assert np.array_equal(twin.model, record.model)
            assert twin.receipt == record.receipt
            assert twin.sensitivity == record.sensitivity
            assert twin.dispatch == record.dispatch
            assert twin.group_pages == record.group_pages
            assert twin.job.seed == record.job.seed
            assert type(twin.job.candidate.loss) is type(record.job.candidate.loss)
            assert twin.done  # loaded terminal records are awaitable

    def test_restart_resumes_models_budgets_and_cache(self, tmp_path):
        jobs = mixed_jobs()
        service = make_service(workers=2, cap=0.5, state_dir=tmp_path)
        originals = submit_all(service, jobs)
        service.drain()  # autosave fires per window + at stop

        restarted = make_service(workers=2, cap=0.5, state_dir=tmp_path)
        loaded = restarted.load_state()
        assert loaded == len(jobs)
        # Prior models are served.
        for record in originals:
            assert np.array_equal(
                restarted.model(record.job_id), record.model
            )
        # Budgets reconciled from receipts: 4 jobs x 0.05 eps committed
        # per principal...
        for statement in restarted.budgets():
            assert statement.spent[0] == pytest.approx(4 * EPS)
        # ...so a job that fit before the restart still fits, and one
        # that overflows the reconciled account is rejected at admission.
        ok = restarted.submit("alice", "t", LogisticLoss(1e-3),
                              epsilon=0.5 - 4 * EPS, passes=2, batch_size=25,
                              seed=12345)
        assert ok.status is JobStatus.QUEUED
        over = restarted.submit("bob", "t", LogisticLoss(1e-3),
                                epsilon=0.5 - 4 * EPS + 0.01, passes=2,
                                batch_size=25, seed=12346)
        assert over.status is JobStatus.REJECTED
        assert restarted.page_reads == 0  # admission decisions cost no I/O
        # The cache came back armed: a resubmission is a zero-cost hit.
        hit = restarted.submit(jobs[0]["principal"], "t", jobs[0]["loss"],
                               epsilon=jobs[0]["epsilon"], passes=2,
                               batch_size=25, seed=jobs[0]["seed"])
        assert hit.dispatch == "cached"
        assert np.array_equal(hit.model, originals[0].model)
        assert restarted.page_reads == 0
        restarted.drain()

    def test_load_before_register_table_still_arms_cache(self, tmp_path):
        service = make_service(workers=1, state_dir=tmp_path)
        record = service.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                                passes=2, batch_size=25, seed=4)
        service.drain()
        service.save_state()

        restarted = TrainingService(scan_seed=5, workers=1, state_dir=tmp_path)
        assert restarted.load_state() == 1  # table not registered yet
        restarted.register_table("t", X, Y)  # same contents -> keys match
        hit = restarted.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                               passes=2, batch_size=25, seed=4)
        assert hit.dispatch == "cached"
        assert np.array_equal(hit.model, record.model)

    def test_inflight_jobs_reload_as_interrupted_failures(self, tmp_path):
        service = make_service(workers=1)
        queued = service.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                                passes=2, batch_size=25, seed=6)
        service.save_state(tmp_path)  # snapshot with the job still QUEUED

        restarted = make_service(workers=1)
        restarted.load_state(tmp_path)
        twin = restarted.result(queued.job_id)
        assert twin.status is JobStatus.FAILED
        assert "interrupted" in twin.error
        assert twin.receipt is None
        # No receipt -> reconciliation charges nothing for it.
        for statement in restarted.budgets():
            assert statement.spent == (0, 0)
        service.drain()

    def test_changed_table_contents_invalidate_the_cache(self, tmp_path):
        service = make_service(workers=1, state_dir=tmp_path)
        service.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                       passes=2, batch_size=25, seed=8)
        service.drain()

        restarted = TrainingService(scan_seed=5, workers=1, state_dir=tmp_path)
        X2 = X.copy()
        X2[0, 0] += 1e-9  # one float differs -> different fingerprint
        restarted.register_table("t", X2, Y)
        restarted.open_budget("alice", "t", 10.0)
        restarted.load_state()
        miss = restarted.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                                passes=2, batch_size=25, seed=8)
        assert miss.status is JobStatus.QUEUED  # not served stale weights
        restarted.drain()

    def test_torn_inflight_record_never_persists_a_receipt(self, tmp_path):
        """The autosave race: a snapshot taken between a worker's ledger
        commit and the status flip to COMPLETED must not persist the
        receipt — else restore would charge the tenant for a job it
        reports as FAILED/interrupted."""
        from repro.service.ledger import BudgetReceipt
        from repro.core.mechanisms import PrivacyParameters

        service = make_service(workers=1)
        record = service.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                                passes=2, batch_size=25, seed=6)
        # Simulate the mid-release window: receipt + model written, the
        # terminal status (which _release sets last) not yet.
        record.status = JobStatus.RUNNING
        record.model = np.zeros(D)
        record.receipt = BudgetReceipt(
            principal="alice", table="t", job_id=record.job_id,
            parameters=PrivacyParameters(EPS), sequence=1,
        )
        service.save_state(tmp_path)

        restarted = make_service(workers=1)
        restarted.load_state(tmp_path)
        twin = restarted.result(record.job_id)
        assert twin.status is JobStatus.FAILED
        assert twin.receipt is None
        assert twin.model is None
        for statement in restarted.budgets():
            assert statement.spent == (0, 0)

    def test_reconcile_keys_on_receipt_identity_not_sequence(self):
        """A warm ledger's live commit may share a sequence number with a
        prior process's receipt; both spends must count (and replaying
        the same receipt twice must not)."""
        from repro.core.mechanisms import PrivacyParameters
        from repro.service import PrivacyBudgetLedger
        from repro.service.ledger import BudgetReceipt

        ledger = PrivacyBudgetLedger()
        ledger.open_account("alice", "t", 1.0)
        ledger.commit(
            ledger.reserve("alice", "t", PrivacyParameters(0.2), job_id="live-1")
        )  # live commit, sequence 1
        prior = BudgetReceipt(
            principal="alice", table="t", job_id="old-1",
            parameters=PrivacyParameters(0.3), sequence=1,  # colliding seq
        )
        assert ledger.reconcile([prior]) == 1
        assert ledger.statement("alice", "t").spent[0] == pytest.approx(0.5)
        assert ledger.reconcile([prior]) == 0  # identity-idempotent
        assert ledger.statement("alice", "t").spent[0] == pytest.approx(0.5)
        # The counter moved past both histories: the next commit's
        # sequence collides with neither.
        receipt = ledger.commit(
            ledger.reserve("alice", "t", PrivacyParameters(0.1), job_id="live-2")
        )
        assert receipt.sequence > 1

    def test_dispatch_machinery_error_fails_jobs_not_workers(self):
        """An unexpected error outside the engine (here: the table vanishes
        between admission and dispatch) must FAIL the jobs with refunds —
        never strand them QUEUED behind a dead worker thread."""
        service = make_service(workers=1)
        records = [
            service.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                           passes=2, batch_size=25, seed=50 + j)
            for j in range(3)
        ]
        service.session.catalog.drop_table("t")
        finished = service.drain()
        assert len(finished) == 3
        for record in records:
            assert record.wait(timeout=10.0)
            assert record.status is JobStatus.FAILED
            assert "no such table" in record.error
        statement = [s for s in service.budgets() if s.principal == "alice"][0]
        assert statement.reserved == (0.0, 0.0)  # all holds refunded
        assert statement.spent == (0, 0)

    def test_reconcile_overflow_rejects_whole_snapshot(self):
        """A snapshot whose receipts overflow a cap must raise with the
        ledger unchanged — never half-charged."""
        from repro.core.accountant import PrivacyBudgetExceeded
        from repro.core.mechanisms import PrivacyParameters
        from repro.service import PrivacyBudgetLedger
        from repro.service.ledger import BudgetReceipt

        ledger = PrivacyBudgetLedger()
        ledger.open_account("alice", "t", 0.5)
        receipts = [
            BudgetReceipt(principal="alice", table="t", job_id=f"old-{i}",
                          parameters=PrivacyParameters(0.3), sequence=i + 1)
            for i in range(2)  # totals 0.6 > cap 0.5
        ]
        with pytest.raises(PrivacyBudgetExceeded, match="refusing to restore"):
            ledger.reconcile(receipts)
        assert ledger.statement("alice", "t").spent == (0, 0)

    def test_stop_during_drain_does_not_hang(self):
        """stop() racing a blocked drain() must wake it (error or clean
        finish), never strand it behind a queue no worker will empty."""
        service = make_service(workers=1).start()
        for j in range(4):
            service.submit("alice", "t", SlowLoss(1e-3), epsilon=EPS,
                           passes=2, batch_size=25, seed=600 + j)
        outcome: list = []

        def drainer():
            try:
                outcome.append(("ok", service.drain()))
            except RuntimeError as error:
                outcome.append(("stopped", error))

        thread = threading.Thread(target=drainer)
        thread.start()
        time.sleep(0.02)  # let the drain block on quiescence
        service.stop()
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "drain hung after stop()"
        assert outcome and outcome[0][0] in ("ok", "stopped")

    def test_snapshot_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something-else", "records": []}')
        with pytest.raises(ValueError, match="not a registry snapshot"):
            ModelRegistry.load(path)


class TestPerTableParallelDispatch:
    """Per-table engine domains: N workers overlap scans on N distinct
    tables, and the concurrency is invisible to everything but the clock
    — released bits, per-job page attribution, and ledger invariants are
    exactly the serialized execution's."""

    def cross_reference(self, jobs) -> dict:
        """{(table, seed): weights} from the 1-worker serialized drain."""
        service = make_two_table_service(workers=1)
        records = submit_cross(service, jobs)
        service.scheduler.run_pending()
        assert all(record.status is JobStatus.COMPLETED for record in records)
        return {
            (record.job.table, record.job.seed): record.model
            for record in records
        }

    def test_cross_table_drain_bitwise_equals_sync(self):
        jobs = cross_table_jobs(12)
        reference = self.cross_reference(jobs)
        service = make_two_table_service(workers=3)
        records = submit_cross(service, jobs)
        finished = service.drain()
        assert len(finished) == len(jobs)
        for record in records:
            assert record.status is JobStatus.COMPLETED
            assert np.array_equal(
                record.model, reference[(record.job.table, record.job.seed)]
            )

    def test_scans_on_distinct_tables_really_overlap(self):
        """With slow scans on two tables and two workers, the per-table
        locks must reach overlap 2; the global-lock reference
        configuration must stay at 1 on the identical workload."""
        for parallel, expected in ((True, 2), (False, 1)):
            service = make_two_table_service(workers=2, parallel_scans=parallel)
            records = submit_cross(service, cross_table_jobs(8, slow=True))
            service.drain()
            assert all(r.status is JobStatus.COMPLETED for r in records)
            assert service.peak_scan_overlap == expected, (
                f"parallel_scans={parallel}"
            )

    def test_page_attribution_exact_under_cross_table_overlap(self):
        """Every job's recorded pages under real cross-table concurrency
        == its solo run's — the per-table counters never absorb another
        table's traffic."""
        solo_pages = {}
        for table in ("t", "u"):
            service = make_two_table_service(workers=1)
            record = service.submit(
                "alice", table, LogisticLoss(1e-3),
                epsilon=EPS, passes=2, batch_size=25, seed=1,
            )
            service.drain()
            solo_pages[table] = record.group_pages
            assert solo_pages[table] > 0

        service = make_two_table_service(workers=2)
        records = submit_cross(service, cross_table_jobs(12, slow=True))
        service.drain()
        assert service.peak_scan_overlap == 2  # the race actually happened
        for record in records:
            assert record.status is JobStatus.COMPLETED
            assert record.group_pages == solo_pages[record.job.table]

    def test_claim_window_is_single_table_and_skips_busy_domains(self):
        service = make_two_table_service(workers=1)  # loop never started
        submit_cross(service, cross_table_jobs(8))
        scheduler = service.scheduler
        first = scheduler.claim_window()
        assert first and len({job.table for job in first}) == 1
        second = scheduler.claim_window()
        assert second and len({job.table for job in second}) == 1
        # The second claim went to the other (free) table's work.
        assert {job.table for job in first} != {job.table for job in second}
        # Both domains busy + more queued on neither -> empty claim.
        assert scheduler.claim_window() == []
        scheduler.dispatch_window(first)
        scheduler.dispatch_window(second)

    def test_claim_window_defers_jobs_on_a_busy_table(self):
        service = make_service(workers=1, window=2)
        jobs = mixed_jobs(5)  # all on table "t", window of 2
        submit_all(service, jobs)
        scheduler = service.scheduler
        claimed = scheduler.claim_window()
        assert len(claimed) == 2
        # t is mid-dispatch: its remaining jobs are not claimable...
        assert scheduler.claim_window() == []
        assert len(scheduler.queue) == 3
        # ...until the window finishes and frees the domain.
        scheduler.dispatch_window(claimed)
        reclaimed = scheduler.claim_window()
        assert len(reclaimed) == 2
        scheduler.dispatch_window(reclaimed)
        service.drain()

    @settings(max_examples=6, deadline=None)
    @given(
        epsilons=st.lists(
            st.floats(min_value=0.01, max_value=0.30, allow_nan=False),
            min_size=4,
            max_size=12,
        )
    )
    def test_cross_table_races_never_overspend(self, epsilons):
        """spent + reserved <= cap at every sampled instant with workers
        racing across two tables, and the final spend is exactly the
        committed jobs' total per account."""
        cap = 0.4
        service = make_two_table_service(workers=2, cap=cap)
        service.start()
        violations: list = []
        stop_sampling = threading.Event()

        def sampler():
            while not stop_sampling.is_set():
                for statement in service.budgets():
                    if would_overflow(
                        statement.cap,
                        statement.spent[0] + statement.reserved[0],
                        statement.spent[1] + statement.reserved[1],
                    ):
                        violations.append(statement)
                time.sleep(0.001)

        records: list = []
        lock = threading.Lock()

        def submitter(chunk, table, base_seed):
            for index, epsilon in enumerate(chunk):
                record = service.submit(
                    "alice", table, LogisticLoss(1e-3), epsilon=float(epsilon),
                    passes=1, batch_size=25, seed=base_seed + index,
                )
                with lock:
                    records.append(record)

        sampler_thread = threading.Thread(target=sampler)
        sampler_thread.start()
        try:
            submitters = [
                threading.Thread(
                    target=submitter,
                    args=(epsilons[i::2], "t" if i == 0 else "u", 20_000 * (i + 1)),
                )
                for i in range(2)
            ]
            for thread in submitters:
                thread.start()
            for thread in submitters:
                thread.join()
            assert service.loop.wait_quiescent(timeout=60.0)
        finally:
            stop_sampling.set()
            sampler_thread.join()
            service.stop()

        assert not violations, f"ledger overspent under race: {violations[:3]}"
        for table in ("t", "u"):
            committed = sum(
                record.receipt.parameters.epsilon
                for record in records
                if record.status is JobStatus.COMPLETED
                and record.job.table == table
            )
            statement = [
                s for s in service.budgets()
                if s.principal == "alice" and s.table == table
            ][0]
            assert statement.spent[0] == pytest.approx(committed)
            assert statement.reserved == (0.0, 0.0)
        for record in records:
            assert record.status in (JobStatus.COMPLETED, JobStatus.REJECTED)


class TestFingerprintInvalidation:
    """Regression: the fingerprint memo was keyed by table name forever,
    so a table whose contents changed could keep serving cached weights
    trained on the OLD data. Drop-and-recreate is now self-invalidating
    (the memo is keyed to the heap's identity); in-place mutation has an
    explicit ``invalidate_fingerprint`` hook."""

    JOB = dict(epsilon=EPS, passes=2, batch_size=25, seed=8)

    def test_drop_and_recreate_never_serves_a_stale_hit(self):
        X_new, Y_new = make_binary_data(M, D, seed=99)
        service = make_service(workers=1)
        first = service.submit("alice", "t", LogisticLoss(1e-3), **self.JOB)
        service.drain()
        assert first.status is JobStatus.COMPLETED

        service.session.catalog.drop_table("t")
        service.register_table("t", X_new, Y_new)  # same name, new content
        miss = service.submit("alice", "t", LogisticLoss(1e-3), **self.JOB)
        assert miss.status is JobStatus.QUEUED, "stale fingerprint cache hit"
        service.drain()
        assert miss.status is JobStatus.COMPLETED
        assert not np.array_equal(miss.model, first.model)

    def test_recreating_with_identical_content_still_hits(self):
        """The memo is an identity check, not an over-invalidation: the
        recreated table re-hashes to the same fingerprint, so the prior
        release is legitimately served."""
        service = make_service(workers=1)
        first = service.submit("alice", "t", LogisticLoss(1e-3), **self.JOB)
        service.drain()
        service.session.catalog.drop_table("t")
        service.register_table("t", X.copy(), Y.copy())
        hit = service.submit("alice", "t", LogisticLoss(1e-3), **self.JOB)
        assert hit.dispatch == "cached"
        assert np.array_equal(hit.model, first.model)

    def test_in_place_mutation_plus_invalidate_misses(self):
        X_new, _ = make_binary_data(M, D, seed=99)
        service = make_service(workers=1)
        # A private copy: mutating the module-level X would leak into
        # every other test registering it.
        service.register_table("w", X.copy(), Y.copy())
        service.open_budget("alice", "w", 10.0)
        first = service.submit("alice", "w", LogisticLoss(1e-3), **self.JOB)
        service.drain()
        assert first.status is JobStatus.COMPLETED

        heap = service.session.catalog.get("w").heap
        heap._features[:] = X_new  # in-place edit: same heap object
        service.invalidate_fingerprint("w")
        miss = service.submit("alice", "w", LogisticLoss(1e-3), **self.JOB)
        assert miss.status is JobStatus.QUEUED, "stale fingerprint cache hit"
        service.drain()
        assert miss.status is JobStatus.COMPLETED
        assert not np.array_equal(miss.model, first.model)


class TestWorkerWakeLatency:
    def test_freed_domain_wakes_a_parked_worker_immediately(self, monkeypatch):
        """The claim runs inside the wait predicate, so a worker parked
        behind a busy engine domain is woken — and claims — the moment
        the domain frees, not up to a poll interval later. With the poll
        stretched to 5 s, a two-window burst on one table still drains in
        well under a second: any timeout-paced pickup would blow this."""
        monkeypatch.setattr("repro.service.worker._IDLE_POLL_SECONDS", 5.0)
        service = make_service(workers=2, window=1)
        stall = threading.Event()
        stalled = threading.Event()

        def blocking_autosave():
            # The first finisher sticks here, so the SECOND window can
            # only be dispatched by the other worker — the one parked on
            # the busy table with the 5 s poll as its only other wake-up.
            if not stalled.is_set():
                stalled.set()
                stall.wait(timeout=20.0)

        service.loop.autosave = blocking_autosave
        service.start()
        try:
            start = time.monotonic()
            first = service.submit("alice", "t", LogisticLoss(1e-3),
                                   epsilon=EPS, passes=1, batch_size=25, seed=1)
            second = service.submit("bob", "t", LogisticLoss(1e-3),
                                    epsilon=EPS, passes=1, batch_size=25, seed=2)
            assert second.wait(timeout=30.0)
            assert first.wait(timeout=30.0)
            elapsed = time.monotonic() - start
            assert elapsed < 2.0, (
                f"burst took {elapsed:.2f}s — a freed engine domain did not "
                "wake the parked worker (poll-paced pickup)"
            )
        finally:
            stall.set()
            service.stop()


class TestQueueInsertOrder:
    def test_queue_is_kept_sorted_on_insert(self):
        """The queue's dispatch order under bisect-insert is exactly the
        old stable sort's: (-priority, arrival), FIFO within a priority
        level — including pushes that arrive out of arrival order (the
        elevator re-queues never-admitted boarders)."""
        from repro.core.bolton import BoltOnCandidate
        from repro.service.jobs import JobQueue, TrainingJob, _dispatch_order

        rng = np.random.default_rng(17)
        jobs = [
            TrainingJob(
                principal="p", table="t",
                candidate=BoltOnCandidate(
                    loss=LogisticLoss(1e-3), passes=1, batch_size=10
                ),
                epsilon=EPS, priority=int(rng.integers(0, 4)),
                job_id=f"job-{index}", arrival=index,
            )
            for index in range(50)
        ]
        queue = JobQueue()
        for job in rng.permutation(len(jobs)):  # arbitrary push order
            queue.push(jobs[int(job)])
        expected = sorted(jobs, key=_dispatch_order)
        assert queue.pending() == expected
        # Claims are order-preserving prefixes of the dispatch order.
        window = queue.pop_window_for("t", 7)
        assert window == expected[:7]
        assert queue.pending() == expected[7:]


class TestResultCacheBound:
    def test_lru_evicts_the_oldest_hit_entry(self):
        from repro.service.registry import CachedResult, ResultCache

        def entry(tag):
            return CachedResult(
                weights=np.array([float(tag)]), sensitivity=1.0,
                noise_norm=0.0, epochs=1, source_job_id=f"job-{tag}",
            )

        cache = ResultCache(max_entries=2)
        cache.put(("k1",), entry(1))
        cache.put(("k2",), entry(2))
        assert cache.get(("k1",)) is not None  # refresh k1 -> k2 is LRU
        cache.put(("k3",), entry(3))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(("k2",)) is None  # the unhit entry went
        assert cache.get(("k1",)) is not None
        assert cache.get(("k3",)) is not None

    def test_invalid_cap_rejected(self):
        from repro.service.registry import ResultCache

        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(max_entries=0)

    def test_service_cache_size_bounds_entries(self):
        service = make_service(workers=1, cache_size=2)
        jobs = mixed_jobs(6)
        submit_all(service, jobs)
        service.drain()
        cache = service.scheduler.cache
        assert len(cache) == 2
        assert cache.evictions == 4
        # The newest releases survive; an evicted job simply trains
        # again (still bitwise-deterministic, just paid for).
        evicted = service.submit(
            jobs[0]["principal"], "t", jobs[0]["loss"],
            epsilon=jobs[0]["epsilon"], passes=jobs[0]["passes"],
            batch_size=jobs[0]["batch_size"], seed=jobs[0]["seed"],
        )
        assert evicted.status is JobStatus.QUEUED
        kept = service.submit(
            jobs[-1]["principal"], "t", jobs[-1]["loss"],
            epsilon=jobs[-1]["epsilon"], passes=jobs[-1]["passes"],
            batch_size=jobs[-1]["batch_size"], seed=jobs[-1]["seed"],
        )
        assert kept.dispatch == "cached"
        service.drain()

    def test_rearmed_snapshot_respects_the_cap(self, tmp_path):
        service = make_service(workers=1, state_dir=tmp_path)
        submit_all(service, mixed_jobs(6))
        service.drain()
        service.save_state()

        restarted = make_service(workers=1, state_dir=tmp_path, cache_size=3)
        assert restarted.load_state() == 6
        assert len(restarted.scheduler.cache) == 3  # re-arm obeys the cap
