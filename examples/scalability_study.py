#!/usr/bin/env python
"""Scalability study: regenerate Figure 2 from the cost model.

Sweeps dataset sizes through the calibrated cost model (validated against
executed engine runs by the test-suite) for both the in-memory and the
disk-based regime, and prints the simulated per-epoch runtimes — the same
series the paper's Figure 2 plots.

Run:  python examples/scalability_study.py
"""

from __future__ import annotations

from repro.evaluation import figure2_scalability, format_series
from repro.rdbms import dataset_size_gb

MEMORY_PAGES = 8_000_000  # ~64 GB of 8 KiB pages, the paper's machine


def main() -> None:
    in_memory = figure2_scalability(
        sizes=(10_000_000, 20_000_000, 30_000_000, 40_000_000, 50_000_000),
        buffer_pool_pages=MEMORY_PAGES,
    )
    print(format_series(
        "Figure 2(a): in-memory (simulated minutes per epoch, b=1, d=50)",
        "millions", in_memory["x"], in_memory["series"],
    ))
    print("sizes:", ", ".join(f"{gb:.1f} GB" for gb in in_memory["meta"]["sizes_gb"]))
    print()

    disk = figure2_scalability(
        sizes=(200_000_000, 400_000_000, 800_000_000, 1_200_000_000),
        buffer_pool_pages=MEMORY_PAGES,
    )
    print(format_series(
        "Figure 2(b): disk-based (simulated minutes per epoch, b=1, d=50)",
        "millions", disk["x"], disk["series"],
    ))
    print("sizes:", ", ".join(f"{gb:.0f} GB" for gb in disk["meta"]["sizes_gb"]))

    ratio_memory = in_memory["series"]["scs13"][-1] / in_memory["series"]["noiseless"][-1]
    ratio_disk = disk["series"]["scs13"][-1] / disk["series"]["noiseless"][-1]
    print(f"\nwhite-box overhead, in-memory: {ratio_memory:.2f}x; "
          f"disk-based: {ratio_disk:.2f}x (I/O dominates, the gap collapses)")
    print(f"largest simulated table: "
          f"{dataset_size_gb(1_200_000_000, 50):.0f} GB")


if __name__ == "__main__":
    main()
