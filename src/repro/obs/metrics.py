"""The service's metrics registry: counters, gauges, histograms, exposition.

The serving stack (scheduler, dispatch loop, WAL, ledger, buffer pool)
records its operational telemetry here so an operator can answer "which
table's scans are hot, how long do WAL fsyncs take, how close is a
principal to its cap" without reading test code. Design constraints, in
order:

* **Cheap enough to stay on.** Every hot-path record — a counter
  increment, a histogram observation — is a few dict operations under a
  per-metric lock, O(1) in the metric's history. Nothing here runs in
  the scan inner loop: instrumentation happens at scan/window/sync
  granularity, and the expensive reads (per-table pool counters, ledger
  statements) are *sampled* by collector callbacks only when someone
  actually renders the metrics.
* **Two exposition formats.** :meth:`MetricsRegistry.render_prometheus`
  emits the Prometheus text format (``# HELP``/``# TYPE`` + samples,
  histograms as cumulative ``_bucket{le=}``/``_sum``/``_count``);
  :meth:`MetricsRegistry.render_json` emits a plain-JSON document that
  round-trips through ``json.dumps``/``loads`` unchanged.
* **A no-op twin.** :func:`disabled` returns a registry whose metrics
  swallow every record — the control arm of the overhead benchmark
  (``bench_service.py --observability``), and the zero-cost default for
  components constructed outside a :class:`TrainingService`.

Naming convention: ``repro_<layer>_<name>{labels}`` — e.g.
``repro_scan_duration_seconds{table=}``, ``repro_ledger_epsilon_spent
{principal=,table=}``. Counters end in ``_total``.
"""

from __future__ import annotations

import bisect
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "disabled",
]

#: Fixed latency buckets (seconds) used unless a histogram asks for its
#: own — spanning sub-millisecond fsyncs to multi-second fused scans.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _format_value(value: float) -> str:
    """Prometheus sample-value formatting: integral values print without
    a fractional part, everything else as the float's shortest repr."""
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labelnames: Sequence[str], key: Tuple[str, ...],
                   extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [f'{name}="{_escape_label(value)}"'
             for name, value in zip(labelnames, key)]
    if extra is not None:
        pairs.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Metric:
    """Shared plumbing: name/help/labelnames, the per-label sample map."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = str(help)
        self.labelnames = tuple(str(label) for label in labelnames)
        self._lock = threading.Lock()
        self._samples: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        if not self.labelnames:
            if labels:
                raise ValueError(
                    f"metric {self.name} takes no labels, got {sorted(labels)}"
                )
            return ()
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name} needs labels {self.labelnames}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()


class Counter(_Metric):
    """A monotonically-increasing count (rendered with a ``_total`` name)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (inc {amount})")
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def set_total(self, value: float, **labels: object) -> None:
        """Collector-only: overwrite the running total with the ground
        truth sampled from the instrumented object (e.g. the result
        cache's own hit counter). Hot paths must use :meth:`inc`."""
        self._samples[self._key(labels)] = float(value)

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._samples.get(self._key(labels), 0.0))

    def samples(self) -> List[Tuple[Tuple[str, ...], float]]:
        with self._lock:
            return sorted((key, float(v)) for key, v in self._samples.items())


class Gauge(_Metric):
    """A value that goes up and down (pool occupancy, budget spent)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        self._samples[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._samples.get(self._key(labels), 0.0))

    def samples(self) -> List[Tuple[Tuple[str, ...], float]]:
        with self._lock:
            return sorted((key, float(v)) for key, v in self._samples.items())


class _HistogramSample:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, num_buckets: int):
        self.counts = [0] * num_buckets
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket histogram; one observation is O(log buckets)."""

    kind = "histogram"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        super().__init__(name, help, labelnames)
        bounds = tuple(float(edge) for edge in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name} needs strictly-increasing buckets, "
                f"got {buckets}"
            )
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        number = float(value)
        index = bisect.bisect_left(self.buckets, number)
        with self._lock:
            sample = self._samples.get(key)
            if sample is None:
                sample = self._samples[key] = _HistogramSample(len(self.buckets))
            if index < len(sample.counts):
                sample.counts[index] += 1
            sample.sum += number
            sample.count += 1

    def count(self, **labels: object) -> int:
        with self._lock:
            sample = self._samples.get(self._key(labels))
            return 0 if sample is None else sample.count

    def sum(self, **labels: object) -> float:
        with self._lock:
            sample = self._samples.get(self._key(labels))
            return 0.0 if sample is None else sample.sum

    def samples(self) -> List[Tuple[Tuple[str, ...], List[int], float, int]]:
        with self._lock:
            return sorted(
                (key, list(s.counts), s.sum, s.count)
                for key, s in self._samples.items()
            )


class MetricsRegistry:
    """Thread-safe registry of named metrics plus exposition.

    ``counter``/``gauge``/``histogram`` are get-or-create (idempotent by
    name; re-requesting a name with a different kind or label set is a
    programming error and raises). ``add_collector`` registers a
    callback run before every render — the sampling hook through which
    the service folds ground truth it does not event-instrument (pool
    counters, ledger statements, cache hit totals) into gauges.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: "OrderedDict[str, _Metric]" = OrderedDict()
        self._lock = threading.Lock()
        self._collectors: List[Callable[[], None]] = []

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Sequence[str], **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, labelnames, **kwargs)
                self._metrics[name] = metric
                return metric
        if not isinstance(metric, cls) or metric.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind} with "
                f"labels {metric.labelnames}; cannot re-register as "
                f"{cls.kind} with labels {tuple(labelnames)}"
            )
        return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return list(self._metrics)

    def add_collector(self, collector: Callable[[], None]) -> None:
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> None:
        """Run the sampling collectors (outside the registry lock — a
        collector is free to create/set metrics)."""
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector()

    # -- exposition --------------------------------------------------------------

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        self.collect()
        with self._lock:
            metrics = list(self._metrics.values())
        lines: List[str] = []
        for metric in metrics:
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key, counts, total, count in metric.samples():
                    cumulative = 0
                    for edge, bucket_count in zip(metric.buckets, counts):
                        cumulative += bucket_count
                        labels = _render_labels(
                            metric.labelnames, key, ("le", _format_value(edge))
                        )
                        lines.append(
                            f"{metric.name}_bucket{labels} {cumulative}"
                        )
                    labels = _render_labels(metric.labelnames, key, ("le", "+Inf"))
                    lines.append(f"{metric.name}_bucket{labels} {count}")
                    plain = _render_labels(metric.labelnames, key)
                    lines.append(f"{metric.name}_sum{plain} {_format_value(total)}")
                    lines.append(f"{metric.name}_count{plain} {count}")
            else:
                for key, value in metric.samples():
                    labels = _render_labels(metric.labelnames, key)
                    lines.append(f"{metric.name}{labels} {_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render_json(self) -> dict:
        """A JSON-native dump: plain dicts/lists/numbers/strings only, so
        ``json.loads(json.dumps(dump)) == dump`` holds exactly."""
        self.collect()
        with self._lock:
            metrics = list(self._metrics.values())
        documents = []
        for metric in metrics:
            entry: dict = {
                "name": metric.name,
                "type": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = [float(edge) for edge in metric.buckets]
                entry["samples"] = [
                    {
                        "labels": dict(zip(metric.labelnames, key)),
                        "counts": list(counts),
                        "sum": float(total),
                        "count": int(count),
                    }
                    for key, counts, total, count in metric.samples()
                ]
            else:
                entry["samples"] = [
                    {
                        "labels": dict(zip(metric.labelnames, key)),
                        "value": float(value),
                    }
                    for key, value in metric.samples()
                ]
            documents.append(entry)
        return {"format": "repro-metrics/v1", "metrics": documents}


class _NullMetric:
    """Accepts every record and keeps nothing."""

    kind = "null"
    name = "null"
    labelnames = ()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def set_total(self, value: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0.0

    def count(self, **labels: object) -> int:
        return 0

    def sum(self, **labels: object) -> float:
        return 0.0

    def samples(self) -> list:
        return []

    def clear(self) -> None:
        pass


_NULL_METRIC = _NullMetric()


class NullMetricsRegistry(MetricsRegistry):
    """The disabled twin: same surface, every record a no-op.

    The control arm of the observability overhead benchmark — construct
    a service with ``metrics=obs.disabled()`` and the instrumentation
    points cost one attribute lookup and a swallowed call. Collectors
    are dropped at registration, so rendering is trivially empty.
    """

    enabled = False

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return _NULL_METRIC  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return _NULL_METRIC  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        return _NULL_METRIC  # type: ignore[return-value]

    def add_collector(self, collector: Callable[[], None]) -> None:
        pass

    def collect(self) -> None:
        pass

    def render_prometheus(self) -> str:
        return ""

    def render_json(self) -> dict:
        return {"format": "repro-metrics/v1", "metrics": []}


def disabled() -> NullMetricsRegistry:
    """A registry that records nothing — the overhead bench's control
    arm, and the default for components built outside a service."""
    return NullMetricsRegistry()
