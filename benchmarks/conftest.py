"""Pytest configuration for the benchmark harness.

Every bench (a) regenerates one table or figure of the paper, (b) asserts
the paper's qualitative *shape* (who wins, roughly by how much, where the
crossovers fall), (c) records the regeneration under pytest-benchmark
timing, and (d) writes the rendered panel to
``benchmarks/results/<name>.txt`` so the regenerated numbers survive the
run (pytest captures stdout of passing tests). Shared helpers live in
:mod:`bench_util`.
"""

from __future__ import annotations

import pathlib
import sys

# Make bench_util and the repository root (for tests.conftest) importable
# regardless of how pytest was invoked.
_here = pathlib.Path(__file__).parent
for path in (str(_here), str(_here.parent)):
    if path not in sys.path:
        sys.path.insert(0, path)
