"""Exact-equivalence suite: vectorized execution == scalar reference.

The vectorized engines (block PSGD, chunked RDBMS execution) are only
admissible because they are *the same algorithm* as the per-example
reference the privacy proof (Lemma 5) reasons about: same permutation,
same mini-batch boundaries, same randomness consumption, same iterates up
to floating-point rounding of the batch sum. This suite is the lock on
that contract — every loss, every schedule regime, every engine feature
(multiple passes, mini-batching, projection, model averaging, fresh
permutations, the baseline hooks) is run on both paths under an explicit
permutation and compared at ``np.allclose(rtol=0, atol=1e-12)``.

If a change makes these tests fail, the fast path has stopped computing
PSGD — fix the path, never the tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim.losses import (
    HingeLoss,
    HuberSVMLoss,
    LeastSquaresLoss,
    LogisticLoss,
    Loss,
)
from repro.optim.projection import L2BallProjection
from repro.optim.psgd import PSGD, PSGDConfig, run_psgd
from repro.optim.schedules import (
    CappedInverseTSchedule,
    ConstantSchedule,
    DecreasingSchedule,
    InverseSqrtTSchedule,
    SquareRootSchedule,
)
from tests.conftest import make_binary_data

ATOL = 1e-12

#: Every loss family the paper covers (regularized and not).
LOSSES = [
    pytest.param(LogisticLoss(), id="logistic"),
    pytest.param(LogisticLoss(regularization=0.05), id="logistic-l2"),
    pytest.param(LogisticLoss(tight_smoothness=True), id="logistic-tight"),
    pytest.param(HuberSVMLoss(smoothing=0.1), id="huber"),
    pytest.param(HuberSVMLoss(smoothing=0.3, regularization=0.02), id="huber-l2"),
    pytest.param(LeastSquaresLoss(margin_bound=2.0), id="least-squares"),
    pytest.param(HingeLoss(), id="hinge"),
]

#: One schedule per analysed step-size regime (Table 4 + Corollaries 2-3).
REGIMES = [
    pytest.param(ConstantSchedule(0.1), id="constant"),
    pytest.param(DecreasingSchedule(beta=1.0, m=80, c=0.5), id="decreasing"),
    pytest.param(SquareRootSchedule(beta=1.0, m=80, c=0.5), id="square-root"),
    pytest.param(CappedInverseTSchedule(beta=1.05, gamma=0.05), id="capped-inverse-t"),
    pytest.param(InverseSqrtTSchedule(0.2), id="inverse-sqrt-t"),
]


def run_both(loss, schedule, m=80, d=6, seed=0, permutation="fixed", **kwargs):
    """Run PSGD on both execution paths with identical randomness."""
    X, y = make_binary_data(m, d, seed=seed)
    perm = (
        np.random.default_rng(seed + 100).permutation(m)
        if permutation == "fixed"
        else None
    )
    results = []
    for execution in ("scalar", "vectorized"):
        results.append(
            run_psgd(
                loss, X, y, schedule, permutation=perm,
                random_state=seed, execution=execution, **kwargs,
            )
        )
    return results


def assert_equivalent(scalar, vectorized):
    """The full result must match: model, final iterate, and bookkeeping."""
    np.testing.assert_allclose(vectorized.model, scalar.model, rtol=0, atol=ATOL)
    np.testing.assert_allclose(
        vectorized.final_iterate, scalar.final_iterate, rtol=0, atol=ATOL
    )
    assert vectorized.updates == scalar.updates
    assert vectorized.passes_completed == scalar.passes_completed


class TestLossByRegime:
    """The core matrix: every loss x every schedule regime."""

    @pytest.mark.parametrize("loss", LOSSES)
    @pytest.mark.parametrize("schedule", REGIMES)
    def test_single_pass(self, loss, schedule):
        scalar, vectorized = run_both(loss, schedule, passes=1, batch_size=1)
        assert_equivalent(scalar, vectorized)

    @pytest.mark.parametrize("loss", LOSSES)
    def test_k_passes_minibatched(self, loss):
        scalar, vectorized = run_both(
            loss, ConstantSchedule(0.1), passes=4, batch_size=7
        )
        assert_equivalent(scalar, vectorized)


class TestEngineFeatures:
    """Every engine feature rides both paths identically."""

    @pytest.mark.parametrize("batch_size", [1, 3, 8, 80, 100])
    def test_batch_sizes_including_tail_and_oversized(self, batch_size):
        scalar, vectorized = run_both(
            LogisticLoss(), ConstantSchedule(0.1), passes=2, batch_size=batch_size
        )
        assert_equivalent(scalar, vectorized)

    def test_projection(self):
        scalar, vectorized = run_both(
            LogisticLoss(regularization=0.1),
            ConstantSchedule(0.2),
            passes=3,
            batch_size=5,
            projection=L2BallProjection(0.5),
        )
        assert_equivalent(scalar, vectorized)

    @pytest.mark.parametrize("average", ["uniform", "suffix"])
    def test_model_averaging(self, average):
        scalar, vectorized = run_both(
            LogisticLoss(), ConstantSchedule(0.1), passes=3, batch_size=4,
            average=average,
        )
        assert_equivalent(scalar, vectorized)
        # The averaged model differs from the final iterate, so this case
        # genuinely exercises the averager on both paths.
        assert not np.allclose(scalar.model, scalar.final_iterate)

    def test_fresh_permutation_each_pass_same_generator(self):
        """Without an explicit permutation both paths must *sample* the same
        permutations — the determinism contract covers internal randomness
        too."""
        X, y = make_binary_data(60, 5, seed=3)
        results = []
        for execution in ("scalar", "vectorized"):
            config = PSGDConfig(
                schedule=ConstantSchedule(0.1),
                passes=3,
                batch_size=5,
                fresh_permutation_each_pass=True,
                execution=execution,
            )
            results.append(PSGD(LogisticLoss(), config).run(X, y, random_state=42))
        assert_equivalent(*results)

    def test_track_loss_pass_losses_match(self):
        X, y = make_binary_data(50, 4, seed=9)
        perm = np.random.default_rng(0).permutation(50)
        losses = []
        for execution in ("scalar", "vectorized"):
            config = PSGDConfig(
                schedule=ConstantSchedule(0.1), passes=3, batch_size=5,
                track_loss=True, execution=execution,
            )
            result = PSGD(LogisticLoss(), config).run(X, y, permutation=perm)
            losses.append(result.pass_losses)
        np.testing.assert_allclose(losses[1], losses[0], rtol=0, atol=ATOL)

    def test_recorded_iterates_match_stepwise(self):
        """Not just the endpoint: every intermediate iterate agrees."""
        X, y = make_binary_data(40, 4, seed=7)
        perm = np.random.default_rng(1).permutation(40)
        iterates = []
        for execution in ("scalar", "vectorized"):
            config = PSGDConfig(
                schedule=ConstantSchedule(0.2), passes=2, batch_size=6,
                record_iterates=True, execution=execution,
            )
            result = PSGD(LogisticLoss(), config).run(X, y, permutation=perm)
            iterates.append(result.iterates)
        assert len(iterates[0]) == len(iterates[1])
        for w_scalar, w_vectorized in zip(iterates[0], iterates[1]):
            np.testing.assert_allclose(w_vectorized, w_scalar, rtol=0, atol=ATOL)


class TestBaselineHooks:
    """SCS13/BST14 ride the same fast engine: the hooks consume the
    generator identically on both paths."""

    def test_gradient_noise_hook(self):
        X, y = make_binary_data(60, 5, seed=2)
        perm = np.random.default_rng(5).permutation(60)
        results = []
        for execution in ("scalar", "vectorized"):
            noise_rng = np.random.default_rng(77)

            def gradient_noise(t, dimension, rng, _nr=noise_rng):
                return _nr.normal(0.0, 0.01, size=dimension)

            config = PSGDConfig(
                schedule=InverseSqrtTSchedule(0.5), passes=2, batch_size=4,
                execution=execution,
            )
            engine = PSGD(LogisticLoss(), config, gradient_noise=gradient_noise)
            results.append(engine.run(X, y, permutation=perm))
        assert_equivalent(*results)

    def test_example_sampler_hook(self):
        """BST14-style i.i.d. sampling: both paths must gather the sampled
        rows and consume one rng call per update."""
        X, y = make_binary_data(60, 5, seed=4)
        results = []
        for execution in ("scalar", "vectorized"):
            def sampler(t, m, rng):
                return rng.integers(0, m, size=4)

            config = PSGDConfig(
                schedule=ConstantSchedule(0.1), passes=2, batch_size=4,
                execution=execution,
            )
            engine = PSGD(LogisticLoss(), config, example_sampler=sampler)
            results.append(engine.run(X, y, random_state=13))
        assert_equivalent(*results)


class _ScalarOnlyAbsLoss(Loss):
    """A third-party loss defining *only* the scalar contract.

    A smoothed absolute-margin loss: ``l = sqrt(1 + (1 - y<w,x>)^2) - 1``.
    No margin-form methods, no batch overrides — it must ride both engines
    through the defaulted row-loop batch methods.
    """

    def value(self, w, x, y):
        margin = 1.0 - float(y) * float(np.dot(w, x))
        return float(np.sqrt(1.0 + margin**2) - 1.0)

    def gradient(self, w, x, y):
        margin = 1.0 - float(y) * float(np.dot(w, x))
        coef = -float(y) * margin / float(np.sqrt(1.0 + margin**2))
        return coef * np.asarray(x, dtype=np.float64)


class TestScalarOnlyLossSubclass:
    """The defaulted batch methods keep scalar-only losses working."""

    def test_batch_gradient_is_mean_of_scalar_gradients(self):
        loss = _ScalarOnlyAbsLoss()
        X, y = make_binary_data(12, 4, seed=6)
        w = np.full(4, 0.3)
        want = np.mean([loss.gradient(w, X[i], y[i]) for i in range(12)], axis=0)
        np.testing.assert_allclose(loss.batch_gradient(w, X, y), want, rtol=0, atol=ATOL)

    def test_batch_value_is_mean_of_scalar_values(self):
        loss = _ScalarOnlyAbsLoss()
        X, y = make_binary_data(12, 4, seed=6)
        w = np.full(4, 0.3)
        want = np.mean([loss.value(w, X[i], y[i]) for i in range(12)])
        assert loss.batch_value(w, X, y) == pytest.approx(want, abs=ATOL)

    def test_trains_identically_on_both_engines(self):
        scalar, vectorized = run_both(
            _ScalarOnlyAbsLoss(), ConstantSchedule(0.1), passes=2, batch_size=5
        )
        assert_equivalent(scalar, vectorized)
        # And it actually learned something (the engine really ran).
        assert float(np.linalg.norm(scalar.model)) > 0.0

    def test_properties_refuses_loudly(self):
        with pytest.raises(NotImplementedError, match="sensitivity"):
            _ScalarOnlyAbsLoss().properties()


class TestInvalidExecution:
    def test_unknown_execution_rejected(self):
        with pytest.raises(ValueError, match="execution"):
            PSGDConfig(schedule=ConstantSchedule(0.1), execution="simd")
