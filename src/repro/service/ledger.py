"""The privacy-budget ledger: per-(principal, table) ε/δ accounts.

:class:`~repro.core.accountant.PrivacyAccountant` answers "how much has
this computation spent against one budget"; a multi-tenant service needs
more: many accounts (one per principal × dataset), and a *two-phase*
spend so that money and data move atomically:

* :meth:`PrivacyBudgetLedger.reserve` — at admission, set the job's
  (ε, δ) aside. Denied reservations raise :class:`BudgetDenied` **before
  the job ever touches data** — the scheduler turns that into a
  rejection with zero pages charged.
* :meth:`PrivacyBudgetLedger.commit` — after the model is trained and
  noised, convert the reservation into a recorded spend on the wrapped
  accountant and hand back a :class:`BudgetReceipt`.
* :meth:`PrivacyBudgetLedger.refund` — if training fails, return the
  reservation untouched: failed jobs don't burn budget.

Invariant (the property tests hammer every interleaving): for each
account, ``spent + reserved <= cap`` at all times, under the same
tolerance rule the accountant itself applies
(:func:`repro.core.accountant.would_overflow`), and every mutation
happens under one lock so concurrent submitters cannot double-spend.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.accountant import (
    PrivacyAccountant,
    PrivacyBudgetExceeded,
    would_overflow,
)
from repro.core.mechanisms import PrivacyParameters

# BudgetDenied's historical home is this module; it now lives in the
# unified error taxonomy (errors.py) so denials can carry a wire code.
from repro.service.errors import BudgetDenied, BudgetRejected

__all__ = [
    "AccountStatement",
    "BudgetDenied",
    "BudgetReceipt",
    "BudgetReservation",
    "PrivacyBudgetLedger",
]


@dataclass(frozen=True)
class BudgetReceipt:
    """Proof of one committed spend, stored with the job's results."""

    principal: str
    table: str
    job_id: str
    parameters: PrivacyParameters
    #: Account-local commit sequence number (audit ordering).
    sequence: int


@dataclass
class BudgetReservation:
    """A pending hold on an account; exactly one of commit/refund may
    consume it (the ledger enforces the state machine)."""

    principal: str
    table: str
    job_id: str
    parameters: PrivacyParameters
    state: str = "reserved"  # -> "committed" | "refunded"


@dataclass
class _Account:
    """One (principal, table) budget account."""

    accountant: PrivacyAccountant
    reserved_epsilon: float = 0.0
    reserved_delta: float = 0.0
    commits: int = 0
    open_reservations: int = 0
    #: Job ids whose receipts were replayed into this account by
    #: :meth:`PrivacyBudgetLedger.reconcile` (restore idempotence).
    reconciled: set = field(default_factory=set)


@dataclass(frozen=True)
class AccountStatement:
    """A read-only snapshot of one account (for status displays)."""

    principal: str
    table: str
    cap: PrivacyParameters
    spent: Tuple[float, float]
    reserved: Tuple[float, float]

    @property
    def available_epsilon(self) -> float:
        return max(self.cap.epsilon - self.spent[0] - self.reserved[0], 0.0)

    @property
    def available_delta(self) -> float:
        return max(self.cap.delta - self.spent[1] - self.reserved[1], 0.0)


class PrivacyBudgetLedger:
    """Thread-safe two-phase budget accounting over many accounts."""

    def __init__(self) -> None:
        self._accounts: Dict[Tuple[str, str], _Account] = {}
        self._lock = threading.RLock()
        #: Ledger-wide event tallies, mutated under the account lock and
        #: sampled by the service's metrics collector (plain ints — the
        #: ledger itself stays metrics-agnostic).
        self.reserve_grants = 0
        self.reserve_denials = 0
        self.commit_count = 0
        self.refund_count = 0
        #: Observer fired for each *new* grant — ``(principal, table,
        #: epsilon, delta)`` — which the durable service wires to its
        #: write-ahead log so caps opened between compactions survive a
        #: crash. :meth:`restore_caps` never fires it (a restore must
        #: not re-log the grants it is replaying).
        self.on_grant: Optional[Callable[[str, str, float, float], None]] = None

    # -- account management ------------------------------------------------------

    def open_account(
        self, principal: str, table: str, epsilon: float, delta: float = 0.0
    ) -> None:
        """Grant ``principal`` a fresh (ε, δ) cap against ``table``."""
        key = (principal, table)
        with self._lock:
            if key in self._accounts:
                raise ValueError(
                    f"account {key} already exists; budgets are immutable "
                    "once granted (open a differently-named dataset view "
                    "to extend a tenant's allowance)"
                )
            self._accounts[key] = _Account(
                accountant=PrivacyAccountant(PrivacyParameters(epsilon, delta))
            )
            observer = self.on_grant
        if observer is not None:
            observer(principal, table, float(epsilon), float(delta))

    def has_account(self, principal: str, table: str) -> bool:
        with self._lock:
            return (principal, table) in self._accounts

    def statement(self, principal: str, table: str) -> AccountStatement:
        with self._lock:
            account = self._require(principal, table)
            return AccountStatement(
                principal=principal,
                table=table,
                cap=account.accountant.budget,
                spent=account.accountant.total(),
                reserved=(account.reserved_epsilon, account.reserved_delta),
            )

    def statements(self) -> List[AccountStatement]:
        with self._lock:
            return [
                self.statement(principal, table)
                for (principal, table) in sorted(self._accounts)
            ]

    # -- durability --------------------------------------------------------------

    def caps_payload(self) -> List[dict]:
        """The granted caps, JSON-ready — all a snapshot needs to store.

        Spends are deliberately *not* serialized: on restore they are
        reconciled from the committed receipts in the registry snapshot
        (:meth:`reconcile`), so the ledger and the results store can
        never tell different stories about who paid for what.
        """
        with self._lock:
            return [
                {
                    "principal": principal,
                    "table": table,
                    "epsilon": account.accountant.budget.epsilon,
                    "delta": account.accountant.budget.delta,
                }
                for (principal, table), account in sorted(self._accounts.items())
            ]

    def restore_caps(self, caps: List[dict]) -> None:
        """Re-open the accounts a snapshot granted (idempotent per cap).

        An account that already exists must carry the same cap — budgets
        are immutable, and a snapshot that disagrees with live grants is
        a configuration error, not something to merge silently. All caps
        are validated before any account is opened, so a rejected
        snapshot leaves the ledger untouched.
        """
        with self._lock:
            for entry in caps:
                key = (entry["principal"], entry["table"])
                cap = PrivacyParameters(entry["epsilon"], entry["delta"])
                existing = self._accounts.get(key)
                if existing is not None and existing.accountant.budget != cap:
                    raise ValueError(
                        f"snapshot grants {key} a cap of {cap}, but the "
                        f"account is already open with "
                        f"{existing.accountant.budget}; budgets are immutable"
                    )
            for entry in caps:
                key = (entry["principal"], entry["table"])
                if key not in self._accounts:
                    self._accounts[key] = _Account(
                        accountant=PrivacyAccountant(
                            PrivacyParameters(entry["epsilon"], entry["delta"])
                        )
                    )

    def reconcile(self, receipts: List[BudgetReceipt]) -> int:
        """Replay committed receipts into the accounts (snapshot restore).

        Receipts replay per account in their commit-sequence order
        through :meth:`PrivacyAccountant.replay`, so every restored spend
        passes the same cap validation the original commit did — a
        snapshot whose receipts overflow a cap raises instead of loading.
        Returns the number of receipts applied.

        Idempotence keys on receipt *identity* (the job id), never on the
        sequence counter: a warm ledger's live commits may collide with a
        prior process's sequence numbers, and dropping a colliding
        receipt would under-count the release history. The counter is
        instead bumped past every replayed sequence so post-restore
        commits stay unique.

        All-or-nothing: every receipt is validated first — its account
        must exist, and each account's new total must fit its cap (the
        spends are non-negative, so if the final total fits, so does
        every replay prefix) — and only then is anything applied. A bad
        snapshot raises with the ledger unchanged, never half-restored.
        """
        from repro.core.accountant import PrivacySpend

        with self._lock:
            ordered = sorted(
                receipts, key=lambda r: (r.principal, r.table, r.sequence)
            )
            fresh, seen = [], set()
            for receipt in ordered:
                identity = (receipt.principal, receipt.table, receipt.job_id)
                account = self._require(receipt.principal, receipt.table)
                if receipt.job_id in account.reconciled or identity in seen:
                    continue
                seen.add(identity)
                fresh.append(receipt)
            added: Dict[Tuple[str, str], Tuple[float, float]] = {}
            for receipt in fresh:
                eps, delta = added.get((receipt.principal, receipt.table), (0.0, 0.0))
                added[(receipt.principal, receipt.table)] = (
                    eps + receipt.parameters.epsilon,
                    delta + receipt.parameters.delta,
                )
            for key, (eps, delta) in added.items():
                accountant = self._accounts[key].accountant
                spent_eps, spent_delta = accountant.total()
                if would_overflow(
                    accountant.budget, spent_eps + eps, spent_delta + delta
                ):
                    raise PrivacyBudgetExceeded(
                        f"snapshot receipts for account {key} total "
                        f"({eps:g}, {delta:g}) on top of spent "
                        f"({spent_eps:g}, {spent_delta:g}), overflowing the "
                        f"cap {accountant.budget}; refusing to restore"
                    )
            applied = 0
            for receipt in fresh:
                account = self._require(receipt.principal, receipt.table)
                account.accountant.replay(
                    [
                        PrivacySpend(
                            label=(
                                f"job:{receipt.job_id} "
                                f"principal:{receipt.principal} (reconciled)"
                            ),
                            parameters=receipt.parameters,
                        )
                    ]
                )
                account.reconciled.add(receipt.job_id)
                account.commits = max(account.commits, receipt.sequence)
                applied += 1
            return applied

    # -- the two-phase spend ----------------------------------------------------

    def reserve(
        self,
        principal: str,
        table: str,
        parameters: PrivacyParameters,
        job_id: str = "",
    ) -> BudgetReservation:
        """Atomically hold ``parameters`` against the account or deny.

        Denial — unknown account, or ``spent + reserved + request``
        overflowing the cap — raises :class:`BudgetRejected` (a
        :class:`BudgetDenied`, so pre-taxonomy handlers still catch it)
        and changes nothing.
        """
        with self._lock:
            key = (principal, table)
            account = self._accounts.get(key)
            if account is None:
                self.reserve_denials += 1
                raise BudgetRejected(
                    f"no budget account for principal {principal!r} on "
                    f"table {table!r}; open one before submitting jobs"
                )
            spent_eps, spent_delta = account.accountant.total()
            if would_overflow(
                account.accountant.budget,
                spent_eps + account.reserved_epsilon + parameters.epsilon,
                spent_delta + account.reserved_delta + parameters.delta,
            ):
                self.reserve_denials += 1
                raise BudgetRejected(
                    f"reserving {parameters} for job {job_id!r} would "
                    f"overflow {principal!r}'s budget on {table!r}: cap "
                    f"{account.accountant.budget}, spent ({spent_eps:g}, "
                    f"{spent_delta:g}), already reserved "
                    f"({account.reserved_epsilon:g}, {account.reserved_delta:g})"
                )
            account.reserved_epsilon += parameters.epsilon
            account.reserved_delta += parameters.delta
            account.open_reservations += 1
            self.reserve_grants += 1
            return BudgetReservation(
                principal=principal,
                table=table,
                job_id=job_id,
                parameters=parameters,
            )

    def commit(self, reservation: BudgetReservation) -> BudgetReceipt:
        """Convert a reservation into a recorded spend (a receipt)."""
        with self._lock:
            account = self._consume(reservation, "committed")
            # The hold comes off before the spend goes on, so the
            # accountant's own cap check sees exactly spent + this job.
            account.accountant.spend(
                reservation.parameters,
                label=f"job:{reservation.job_id} principal:{reservation.principal}",
            )
            account.commits += 1
            self.commit_count += 1
            return BudgetReceipt(
                principal=reservation.principal,
                table=reservation.table,
                job_id=reservation.job_id,
                parameters=reservation.parameters,
                sequence=account.commits,
            )

    def refund(self, reservation: BudgetReservation) -> None:
        """Release a reservation without spending (failed/cancelled job)."""
        with self._lock:
            self._consume(reservation, "refunded")
            self.refund_count += 1

    # -- internals ---------------------------------------------------------------

    def _require(self, principal: str, table: str) -> _Account:
        account = self._accounts.get((principal, table))
        if account is None:
            raise KeyError(f"no budget account for ({principal!r}, {table!r})")
        return account

    def _consume(self, reservation: BudgetReservation, new_state: str) -> _Account:
        """Transition a reservation out of 'reserved', releasing its hold."""
        if reservation.state != "reserved":
            raise ValueError(
                f"reservation for job {reservation.job_id!r} is already "
                f"{reservation.state}; commit/refund may be called once"
            )
        account = self._require(reservation.principal, reservation.table)
        account.reserved_epsilon -= reservation.parameters.epsilon
        account.reserved_delta -= reservation.parameters.delta
        account.open_reservations -= 1
        # Clamp rounding dust so long-lived accounts cannot drift below 0.
        if account.open_reservations == 0:
            account.reserved_epsilon = 0.0
            account.reserved_delta = 0.0
        reservation.state = new_state
        return account
