"""The shared-scan scheduler: many tenants' jobs, one table scan.

PR 2 taught the engine to train K models in one scan
(:class:`~repro.rdbms.uda.MultiSGDUDA`); this module turns that
*intra-request* speedup into *cross-tenant* batching: queued jobs that
target the same table and agree on the scan-lockstep knobs
(:meth:`TrainingJob.fusion_key` — batch size and passes) are dispatched
as ONE fused aggregate query, so a 32-job window costs one job's page
requests instead of 32. Jobs nothing else matches fall back to the
classic sequential dispatch; either way a job's weights are bitwise the
same (the fused UDA runs in ``gradient_mode="exact"`` over the session's
per-table shared scan, and each job's noise comes from its own
seed-spawned stream).

Admission control is budget-first: a job's (ε, δ) is **reserved** in the
ledger at submission, *before* it can ever reach a scan. Denied jobs are
rejected having charged zero pages and zero budget; failed jobs refund
their reservation; only a successfully released model commits it.

Two serving-layer mechanisms ride the bitwise-determinism invariant:

* **The cross-drain result cache.** A release is a pure function of
  (table contents, the table's scan permutation, candidate, privacy
  parameters, job seed) — so that tuple (with the table contents
  summarized by :func:`table_fingerprint` and the permutation by the
  scheduler's ``scan_seed``) keys a cache of committed releases.
  Resubmitting a completed job returns the stored weights at admission:
  0 page requests, 0 ε re-spend (the same output released twice reveals
  nothing new — no reservation is taken, no spend committed), dispatch
  mode ``"cached"``. Hits are gated on the submitter holding a ledger
  account for the table: a free re-release, not an access grant.
* **Worker-thread dispatch** (:mod:`repro.service.worker`). Dispatch is
  split into :meth:`claim_window` (pop the next batching window — quick,
  under the admission lock) and :meth:`dispatch_window` (train it), so
  background workers can pull windows concurrently while ``submit()``
  never waits on a scan.

Per-table engine domains
------------------------

The engine's unit of isolation is the *table*, not the whole pool: each
registered table owns an engine domain — its buffer-pool shard and
counters (:meth:`BufferPool.stats_for`), its shared-scan permutation
operator, and its **engine lock**. Scans of the *same* table serialize on
that lock (the before/after page deltas each dispatch records stay
exact), while scans on *different* tables hold different locks and run
truly concurrently: N workers drive N fused scans on N distinct tables
at once. :meth:`claim_window` is table-aware — it claims the next window
for a table whose domain is free instead of parking a worker behind an
unrelated scan — and windows are therefore single-table by construction.
``parallel_scans=False`` restores the PR 4 behaviour (every scan behind
one global engine lock): the reference configuration the ``--parallel``
bench gate measures its speedup against. Neither mode can change any
released bit — by the determinism contract, scheduling only ever decides
*when* a job completes.

Elevator scans (shared cursors)
-------------------------------

Window batching amortizes pages *within* a window, but a compatible job
arriving one millisecond after a scan started still waits out the whole
scan and then pays for a fresh one. ``elevator=True`` enables the
paper's true shared-cursor design: each table's engine domain runs one
continuous scan loop (a :class:`~repro.rdbms.executor.ScanCursor` over
the table's shared permutation), and late-arriving jobs **board at the
cursor's current position** — ``submit()`` and :meth:`claim_window`
route them onto the open flight, the driving worker admits them at the
next canonical chunk boundary, and each rider exits after riding
exactly ``passes`` wrap-arounds back to its boarding chunk. Page cost
becomes O(concurrent scan loops) instead of O(batching windows), and
because riders keep their own batch phase, the fusion constraint
relaxes from the scan-lockstep key to the table itself
(:meth:`TrainingJob.elevator_key`).

Boarding is bitwise-safe — a rider executes the identical operation
sequence of a solo ``run_sgd(..., start_offset=p)`` — but the *choice*
of ``p`` depends on when the job arrived relative to the cursor, so
under the elevator a job's released weights are a pure function of the
usual tuple **plus its boarding offset**. That is why elevator mode is
opt-in, why every record carries ``boarding_offset``/``epochs_ridden``
provenance, and why only offset-0 releases (flight openers — identical
to a window-batched run) are primed into the result cache.
"""

from __future__ import annotations

import hashlib
import threading
import time
import zlib
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.mechanisms import mechanism_for
from repro.core.sensitivity import SensitivityBound, sensitivity_for_schedule
from repro.obs import metrics as obs_metrics
from repro.rdbms.bismarck import BismarckSession
from repro.rdbms.catalog import TableInfo
from repro.rdbms.storage import MaterializedHeapFile, TransientPageFault
from repro.rdbms.uda import ElevatorMultiSGDUDA, ElevatorRider, MultiSGDUDA, SGDUDA
from repro.service.errors import InvalidCandidate, UnknownTable
from repro.service.jobs import JobQueue, JobStatus, TrainingJob
from repro.service.ledger import (
    BudgetDenied,
    BudgetReservation,
    PrivacyBudgetLedger,
)
from repro.service.registry import (
    CachedResult,
    JobRecord,
    ModelRegistry,
    ResultCache,
)
from repro.utils.validation import check_positive_int


def table_fingerprint(table: TableInfo) -> Optional[str]:
    """A content hash of a table — the "same data" half of a cache key.

    Pages are read straight off the heap file, *not* through the buffer
    pool, so fingerprinting never perturbs the page-request counters the
    accounting tests pin (and never evicts a tenant's working set).
    Computed once per table and memoized by the scheduler — tables in
    this engine are immutable once registered.

    Only heaps with a cheap, stable identity are fingerprinted: a heap
    exposing ``content_fingerprint()`` — a parametric synthesizer, or a
    :class:`~repro.rdbms.storage.SQLiteHeapFile` whose fingerprint is
    the same page-wise SHA-256 computed here, making cache keys
    backend-invariant ("same data, different storage" hits the same
    cached release) — is taken at its word, and a
    :class:`MaterializedHeapFile` is hashed page by page. Anything else
    — notably a :class:`VirtualHeapFile` wrapping an opaque generator,
    where hashing would mean synthesizing the entire (possibly
    hundreds-of-GB) table — returns ``None``: jobs on such tables train
    normally but are never cached.
    """
    heap = table.heap
    custom = getattr(heap, "content_fingerprint", None)
    if callable(custom):
        return str(custom())
    if not isinstance(heap, MaterializedHeapFile):
        return None
    digest = hashlib.sha256()
    for page_id in range(heap.num_pages):
        page = heap.read_page(page_id)
        digest.update(np.ascontiguousarray(page.features, dtype=np.float64).tobytes())
        digest.update(np.ascontiguousarray(page.labels, dtype=np.float64).tobytes())
    return digest.hexdigest()[:16]


class _ElevatorFlight:
    """Book-keeping for one open scan loop (all fields guarded by the
    scheduler's admission lock).

    ``boarders`` holds jobs routed onto the flight but not yet admitted
    by the driving worker; ``occupancy`` counts riders aboard plus
    pending boarders (capacity control); ``closed`` stops routing the
    instant the driver begins tearing the flight down, so a job can
    never be routed into a loop that will not pick it up.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.boarders: List[TrainingJob] = []
        self.occupancy = 0
        self.closed = False

    @property
    def room(self) -> int:
        return 0 if self.closed else self.capacity - self.occupancy


class SharedScanScheduler:
    """Groups compatible queued jobs and dispatches each group as one scan.

    Parameters
    ----------
    session / ledger / registry:
        The service's engine connection, budget ledger, and results store.
    batching_window:
        How many queued jobs one scheduling round considers (the fusion
        opportunity window). Dispatch order is by (priority desc, arrival)
        — deterministic, and by the bitwise-determinism contract it only
        affects *when* a job completes, never what it computes.
    chunk_size:
        Executor block size for every dispatched scan (fused and
        sequential must agree: chunking decides segment boundaries, and
        bitwise equality needs identical segments).
    fuse:
        ``False`` forces the sequential fallback for every job — the
        reference dispatch the benchmarks and equivalence tests compare
        against.
    scan_seed:
        Seed of the per-table shared permutations. Each table's scan
        order is drawn once from ``(scan_seed, table name)`` and replayed
        by every job that ever trains on it, which is what makes a job's
        result independent of scheduling.
    parallel_scans:
        ``True`` (default) gives every table its own engine lock, so
        workers overlap scans on distinct tables. ``False`` routes every
        scan through one global engine lock — the serialized PR 4
        behaviour the parallel bench gate compares against.
    elevator:
        ``True`` dispatches via shared cursors: a claimed window opens a
        continuous scan loop that compatible jobs submitted while it
        runs board mid-flight (see the module docstring). Off by
        default — boarding offsets make released weights depend on
        arrival timing, which the windowed modes never do.
    cache_size:
        Entry cap of the cross-drain result cache (LRU on last hit);
        ``None`` leaves it unbounded.
    scan_retries:
        How many times a *windowed* scan that raises
        :class:`~repro.rdbms.storage.TransientPageFault` is retried
        (with linear backoff) before the group fails. Safe under the
        determinism contract: a retried scan replays the identical
        permutation from tuple 0, so a success on any attempt releases
        the same bits. Elevator flights never retry — a mid-flight
        cursor has already folded chunks into its riders, so the only
        honest recovery is failing them (reservations refunded).
    retry_backoff_seconds:
        Base sleep between retry attempts (attempt ``n`` waits
        ``n * retry_backoff_seconds``).
    """

    def __init__(
        self,
        session: BismarckSession,
        ledger: PrivacyBudgetLedger,
        registry: ModelRegistry,
        *,
        batching_window: int = 32,
        chunk_size: int = 256,
        fuse: bool = True,
        scan_seed: int = 0,
        parallel_scans: bool = True,
        elevator: bool = False,
        cache_size: Optional[int] = None,
        scan_retries: int = 2,
        retry_backoff_seconds: float = 0.05,
        metrics: Optional[obs_metrics.MetricsRegistry] = None,
    ) -> None:
        self.session = session
        self.ledger = ledger
        self.registry = registry
        # Telemetry handles. The default is the no-op registry, so a
        # scheduler driven directly (tests, benchmarks) pays one
        # swallowed call per instrumentation point; the service passes
        # its live registry in. All recording here is per scan, window,
        # or flight — never per tuple or per chunk.
        self.metrics = metrics if metrics is not None else obs_metrics.disabled()
        self._scan_duration = self.metrics.histogram(
            "repro_scan_duration_seconds",
            "Wall-clock of one dispatched scan (fused group, sequential "
            "job, or elevator flight), by table.",
            ("table",),
        )
        self._scan_pages_total = self.metrics.counter(
            "repro_scan_pages_total",
            "Page requests charged by dispatched scan groups, by table "
            "(equals the sum of the dispatch log's page deltas).",
            ("table",),
        )
        self._scan_retries_total = self.metrics.counter(
            "repro_scan_retries_total",
            "Transient-page-fault retries taken by windowed scans.",
        )
        self._queue_wait = self.metrics.histogram(
            "repro_queue_wait_seconds",
            "Time from admission to a worker claiming the job (the "
            "queued span), by table.",
            ("table",),
        )
        self._boardings_total = self.metrics.counter(
            "repro_elevator_boardings_total",
            "Riders admitted onto elevator flights, by table.",
            ("table",),
        )
        self._flight_riders = self.metrics.histogram(
            "repro_elevator_riders",
            "Riders admitted per elevator flight, by table.",
            ("table",),
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
        )
        self._epochs_ridden_total = self.metrics.counter(
            "repro_elevator_epochs_ridden_total",
            "Full cursor loops ridden by released elevator riders.",
        )
        self.batching_window = check_positive_int(batching_window, "batching_window")
        self.chunk_size = check_positive_int(chunk_size, "chunk_size")
        self.fuse = bool(fuse)
        self.scan_seed = int(scan_seed)
        self.parallel_scans = bool(parallel_scans)
        self.elevator = bool(elevator)
        if scan_retries < 0:
            raise ValueError(f"scan_retries must be >= 0, got {scan_retries}")
        if retry_backoff_seconds < 0:
            raise ValueError(
                f"retry_backoff_seconds must be >= 0, got {retry_backoff_seconds}"
            )
        self.scan_retries = int(scan_retries)
        self.retry_backoff_seconds = float(retry_backoff_seconds)
        #: Transient-fault retries actually taken (telemetry).
        self.scan_retries_used = 0
        self.queue = JobQueue()
        self.cache = ResultCache(max_entries=cache_size)
        # table name -> (heap object, fingerprint): keying the memo to
        # the heap's identity makes drop-and-recreate self-invalidating;
        # in-place content mutation still needs invalidate_fingerprint.
        self._fingerprints: Dict[str, Tuple[object, Optional[str]]] = {}
        # Open elevator flights by table (admission lock).
        self._flights: Dict[str, _ElevatorFlight] = {}
        self._reservations: Dict[str, BudgetReservation] = {}
        self._clock = 0
        # Guards the admission path (clock, queue, reservation map, the
        # busy-table set) so concurrent submitters compose with the
        # ledger's own lock.
        self._admission_lock = threading.Lock()
        # Per-table engine locks: a scan serializes with other scans of
        # ITS table only — page accounting is per-table too (the pool's
        # per-heap counters), so the before/after deltas each dispatch
        # records stay exact under cross-table concurrency. Never taken
        # by submit(). With parallel_scans=False every table resolves to
        # the one global lock below instead.
        self._table_locks: Dict[str, threading.Lock] = {}
        self._table_locks_guard = threading.Lock()
        self._global_engine_lock = threading.Lock()
        # Tables whose domain a worker has claimed a window for (claim ->
        # end of dispatch). claim_window skips them so a free worker
        # takes a different table's work instead of parking on a lock.
        self._busy_tables: set = set()
        # Scan-overlap telemetry (the server reports it): which tables
        # are inside a scan right now, and the peak distinct-table
        # concurrency ever reached.
        self._overlap_lock = threading.Lock()
        self._scanning: set = set()
        self.peak_overlap = 0
        #: Scans dispatched per table (fused group = one scan).
        self.table_scans: Dict[str, int] = {}
        #: Dispatch telemetry: (key, job_ids, pages) per executed group.
        self.dispatch_log: List[Tuple[tuple, List[str], int]] = []

    # -- admission ---------------------------------------------------------------

    def submit(self, job: TrainingJob) -> JobRecord:
        """Admit (reserve budget + enqueue), serve from cache, or reject.

        Zero-cost rejection is the point: the ledger says no *here*, at
        submission, so an over-budget job never appears in any scan group
        and never causes a page request. The result cache answers here
        too — an account-holder's job identical to a committed release
        completes at admission with 0 pages and 0 ε reserved or spent.
        """
        if not job.job_id or job.arrival < 0:
            raise ValueError("submit needs a stamped job (job_id + arrival)")
        # Fail fast on programming errors — unknown table, or an option
        # the in-RDBMS dispatch cannot honor — so they raise instead of
        # producing a REJECTED record (and before any budget moves).
        try:
            self.session.catalog.get(job.table)
        except KeyError as error:
            raise UnknownTable(error.args[0]) from None
        if job.candidate.average is not None:
            raise InvalidCandidate(
                "the service's in-RDBMS dispatch (SGDUDA/MultiSGDUDA) does "
                "not support iterate averaging; submit with average=None or "
                "train via repro.core.train_bolt_on directly"
            )
        cache_key = self.cache_key(job)
        with self._admission_lock:
            self._clock += 1
            record = JobRecord(
                job=job, status=JobStatus.QUEUED, submitted_at=self._clock
            )
            record.trace.enter("admit")
            # The cache answers only for principals the ledger knows on
            # this table: a release costs an account-holder 0 ε (the same
            # output twice reveals nothing new), but a principal with no
            # grant at all must fall through to the reserve below and be
            # REJECTED — a hit is a free re-release, not an access grant.
            hit = (
                self.cache.get(cache_key)
                if self.ledger.has_account(job.principal, job.table)
                else None
            )
            if hit is not None:
                record.status = JobStatus.COMPLETED
                # Copy: the cache entry is shared across hits, and the
                # registry hands records' arrays back by reference — one
                # tenant mutating their result must never corrupt the
                # cache or another tenant's record.
                record.model = hit.weights.copy()
                record.sensitivity = hit.sensitivity
                record.noise_norm = hit.noise_norm
                record.epochs = hit.epochs
                record.dispatch = "cached"
                record.cache_source = hit.source_job_id
                record.table_fingerprint = cache_key[1]
                record.scan_seed = self.scan_seed
                record.finished_at = self._clock
                record.trace.close()
                self.registry.add(record)
                record.mark_done()
                return record
            try:
                reservation = self.ledger.reserve(
                    job.principal, job.table, job.privacy, job_id=job.job_id
                )
            except BudgetDenied as denial:
                record.status = JobStatus.REJECTED
                record.error = str(denial)
                record.finished_at = self._clock
                record.trace.close()
                self.registry.add(record)
                record.mark_done()
                return record
            try:
                self.registry.add(record)
            except Exception:
                # Never leak a hold: if the record cannot be registered
                # (e.g. a duplicate job id), the reservation comes back.
                self.ledger.refund(reservation)
                raise
            self._reservations[job.job_id] = reservation
            self.queue.push(job)
            record.trace.enter("queued")
            # Elevator mode: if the job's table has an open scan loop
            # with room, route it straight onto the flight — this is the
            # board-the-running-scan path; the driving worker admits it
            # at the next chunk boundary.
            self._route_boarders_locked()
            return record

    def cancel(self, job_id: str) -> bool:
        """Cancel a job that is still QUEUED: refund its reservation and
        record it CANCELLED (0 pages, 0 ε) so its submitter's
        ``record.wait()`` returns immediately.

        Returns ``False`` when the job can no longer cancel — it already
        reached a terminal state, or a worker claimed it into a window
        (it is about to run; scans are not cancellable mid-epoch).
        Unknown job ids raise ``KeyError``. In elevator mode a job routed
        onto an open flight but not yet admitted by the driver is still
        cancellable — it is pulled off the boarder list before the
        cursor ever sees it.
        """
        record = self.registry.get(job_id)
        with self._admission_lock:
            if record.status is not JobStatus.QUEUED:
                return False
            removed = self.queue.remove(job_id)
            if not removed:
                for flight in self._flights.values():
                    for index, boarder in enumerate(flight.boarders):
                        if boarder.job_id == job_id:
                            del flight.boarders[index]
                            flight.occupancy -= 1
                            removed = True
                            break
                    if removed:
                        break
            if not removed:
                # Claimed into a window (or already aboard a cursor):
                # the dispatch path owns it now.
                return False
            reservation = self._reservations.pop(job_id, None)
            if reservation is not None:
                self.ledger.refund(reservation)
            self._clock += 1
            record.error = "cancelled while queued"
            record.finished_at = self._clock
            record.trace.close()
            record.status = JobStatus.CANCELLED
        record.mark_done()
        return True

    # -- the result cache --------------------------------------------------------

    def cache_key(self, job: TrainingJob) -> Optional[tuple]:
        """The bitwise-determinism tuple that identifies ``job``'s release:
        (table name + content fingerprint + scan seed, candidate identity
        + privacy parameters + job seed). ``None`` when the job is not
        cacheable (a loss without a hashable identity, or a table without
        a cheap content fingerprint)."""
        identity = job.cache_identity()
        if identity is None:
            return None
        fingerprint = self.fingerprint_table(job.table)
        if fingerprint is None:
            return None
        return (job.table, fingerprint, self.scan_seed, identity)

    def fingerprint_table(self, table_name: str) -> Optional[str]:
        """Memoized content fingerprint of a registered table (``None``
        for unfingerprintable heaps — their jobs are never cached).

        The service calls this eagerly at table registration so the
        O(table) hashing pass happens there, not inside the first
        tenant's ``submit()`` — admission must stay bookkeeping-cheap.
        (Lazy computation remains as a fallback for schedulers driven
        directly, e.g. in tests.)

        The memo is keyed to the *heap object*, not the table name
        alone: dropping and recreating a table swaps the heap, so the
        stale entry can never key a cache hit to the old content. A heap
        whose contents are mutated **in place** is invisible to this
        check — that is what :meth:`invalidate_fingerprint` is for, and
        every content-mutation surface must call it.
        """
        table = self.session.catalog.get(table_name)
        memo = self._fingerprints.get(table_name)
        if memo is None or memo[0] is not table.heap:
            memo = (table.heap, table_fingerprint(table))
            self._fingerprints[table_name] = memo
        return memo[1]

    def invalidate_fingerprint(self, table_name: str) -> None:
        """Drop the memoized content fingerprint for ``table_name``.

        Required after any heap content mutation (re-registration with
        new data, in-place array edits): the fingerprint is the "same
        data" half of every cache key, so a stale memo would key cache
        hits — weights trained on the *old* content — to the new table.
        The service wires this into its registration surfaces; callers
        mutating a registered heap directly must invoke it themselves
        (via :meth:`TrainingService.invalidate_fingerprint`). Idempotent
        and cheap; the next :meth:`fingerprint_table` call re-hashes.
        """
        self._fingerprints.pop(table_name, None)


    def prime_cache(self, record: JobRecord) -> bool:
        """Arm the cache with an already-committed release (restore path).

        A registry loaded from a snapshot holds completed records whose
        work was paid for in a previous process; priming each one makes
        the restarted service serve resubmissions from cache instead of
        re-spending budget. The key is built from the record's own
        provenance (the fingerprint of the data it was trained on, its
        scan seed) — never the table's current state — so a release of
        since-changed data or another scan order is simply unreachable,
        not wrong. Returns whether the record was cacheable.
        """
        if record.status is not JobStatus.COMPLETED or record.model is None:
            return False
        if record.boarding_offset:
            # An offset release is specific to where the cursor happened
            # to be when the job boarded; only offset-0 releases — what a
            # window-batched dispatch would also have produced — are
            # reproducible from the cache key alone.
            return False
        if not record.table_fingerprint or record.scan_seed is None:
            return False
        identity = record.job.cache_identity()
        if identity is None:
            return False
        key = (
            record.job.table,
            record.table_fingerprint,
            record.scan_seed,
            identity,
        )
        self.cache.put(
            key,
            CachedResult(
                weights=np.array(record.model, dtype=np.float64),
                sensitivity=record.sensitivity,
                noise_norm=record.noise_norm,
                epochs=record.epochs,
                source_job_id=record.cache_source or record.job_id,
            ),
        )
        return True

    # -- dispatch ----------------------------------------------------------------

    def claim_window(self) -> List[TrainingJob]:
        """Atomically pop the next batching window (possibly empty).

        This is the worker-facing half of dispatch: quick, under the
        admission lock, never touching the engine — so a worker claiming
        work can never make ``submit()`` wait on a scan.

        Table-aware: the window is claimed for the table of the
        highest-priority queued job whose engine domain is *free* (no
        other worker mid-dispatch on it), and contains only that table's
        jobs — so a second worker overlaps a different table's scan
        instead of queueing behind this one. Empty with a non-empty
        queue means every queued table is mid-scan; the claimed table's
        domain is marked busy until :meth:`dispatch_window` releases it.

        In elevator mode a busy table may have an *open flight*: rather
        than deferring its queued jobs to the next window, they are
        routed onto the live cursor first (same admission-lock pass), so
        an empty claim can still have moved work forward.
        """
        with self._admission_lock:
            self._route_boarders_locked()
            if not len(self.queue):
                return []
            table = self.queue.next_table(busy=self._busy_tables)
            if table is None:
                return []
            window = self.queue.pop_window_for(table, self.batching_window)
            if window:
                self._busy_tables.add(table)
                for job in window:
                    self._mark_claimed(job)
            return window

    def _mark_claimed(self, job: TrainingJob) -> None:
        """Trace/metrics at the queue→worker handoff: close the job's
        ``queued`` span (its duration is the queue wait), open ``claim``."""
        trace = self.registry.get(job.job_id).trace
        queued = trace.enter("claim")
        if queued is not None and queued.name == "queued":
            self._queue_wait.observe(queued.duration, table=job.table)

    def queue_depths(self) -> Dict[str, int]:
        """Queued jobs per table right now (telemetry snapshot)."""
        with self._admission_lock:
            return self.queue.depth_by_table()

    def _route_boarders_locked(self) -> None:
        """Move queued jobs onto open flights with room (admission lock
        held by the caller). Compatibility is the elevator key — the
        table alone (:meth:`TrainingJob.elevator_key`) — so any queued
        job targeting a table with an open loop boards it."""
        if not self.elevator or not self._flights:
            return
        for table_name, flight in list(self._flights.items()):
            room = flight.room
            if room <= 0:
                continue
            boarding = self.queue.pop_window_for(table_name, room)
            if boarding:
                flight.boarders.extend(boarding)
                flight.occupancy += len(boarding)

    def dispatch_window(self, window: List[TrainingJob]) -> List[JobRecord]:
        """Train one claimed window: group by fusion key, dispatch each
        group as one scan. Returns the records that reached a terminal
        state (completed + failed), in dispatch order.

        No exception escapes per-group dispatch: an unexpected error
        (engine failures are already handled deeper down — this catches
        everything else, e.g. a table dropped between admission and
        dispatch) FAILS the group's remaining jobs, refunding their
        reservations. A claimed job must always reach a terminal state —
        a stranded QUEUED/RUNNING record with a leaked budget hold would
        be strictly worse than any error this could surface.
        """
        finished: List[JobRecord] = []
        groups: Dict[tuple, List[TrainingJob]] = {}
        for job in window:
            key = job.elevator_key() if self.elevator else job.fusion_key()
            groups.setdefault(key, []).append(job)
        try:
            for key, jobs in groups.items():
                try:
                    if self.elevator:
                        self._dispatch_elevator(key, jobs, finished)
                    elif self.fuse and len(jobs) > 1:
                        self._dispatch_fused(key, jobs, finished)
                    else:
                        for job in jobs:
                            self._dispatch_sequential(key, job, finished)
                except Exception as error:
                    self.fail_jobs(jobs, error, finished)
        finally:
            # Free the claimed engine domains no matter what — a leaked
            # busy flag would starve the table forever. (A window built
            # by claim_window names one table; discard tolerates windows
            # assembled by hand in tests, which were never marked busy.)
            with self._admission_lock:
                self._busy_tables.difference_update(job.table for job in window)
        return finished

    def fail_jobs(
        self,
        jobs: List[TrainingJob],
        error: Exception,
        finished: Optional[List[JobRecord]] = None,
    ) -> List[JobRecord]:
        """Drive every non-terminal job in ``jobs`` to FAILED (reservation
        refunded). The last-resort cleanup for dispatch-machinery errors."""
        finished = [] if finished is None else finished
        for job in jobs:
            if self.registry.get(job.job_id).status in (
                JobStatus.QUEUED,
                JobStatus.RUNNING,
            ):
                self._fail(job, error, finished)
        return finished

    def release_window(self, window: List[TrainingJob]) -> None:
        """Free the engine-domain busy flags a claimed window holds.

        :meth:`dispatch_window` releases them itself on every path
        through its ``finally`` — this is the worker's belt-and-braces
        cleanup for exceptions that strike *outside* dispatch (a crash
        hook between claim and dispatch, a failure inside ``fail_jobs``):
        a leaked busy flag would starve the table forever, and releasing
        an already-free table is a no-op, so calling this twice is safe.
        """
        with self._admission_lock:
            self._busy_tables.difference_update(job.table for job in window)

    def run_pending(self) -> List[JobRecord]:
        """Drain the queue synchronously on the calling thread.

        The single-threaded reference loop: claim a window, dispatch it,
        repeat until quiescent. The worker loop
        (:class:`repro.service.worker.DispatchLoop`) does exactly this
        from background threads; by the determinism contract both paths
        release bitwise-identical weights.
        """
        finished: List[JobRecord] = []
        while True:
            window = self.claim_window()
            if not window:
                return finished
            finished.extend(self.dispatch_window(window))

    # -- the two dispatch paths --------------------------------------------------

    def _dispatch_fused(
        self, key: tuple, jobs: List[TrainingJob], finished: List[JobRecord]
    ) -> None:
        """ONE fused scan for the whole group (pages charged once)."""
        table = self.session.catalog.get(jobs[0].table)
        prepared = []
        for job in jobs:
            resolved = self._prepare(job, table.num_tuples, finished)
            if resolved is not None:
                prepared.append((job,) + resolved)
        if not prepared:
            return
        uda = MultiSGDUDA(
            losses=[job.candidate.loss for job, *_ in prepared],
            schedules=[schedule for _, schedule, _, _ in prepared],
            batch_size=prepared[0][0].candidate.batch_size,
            projections=[projection for _, _, projection, _ in prepared],
            gradient_mode="exact",
        )
        for job, *_ in prepared:
            record = self.registry.get(job.job_id)
            record.status = JobStatus.RUNNING
            record.trace.enter("scan")
        pool_stats = self.session.pool.stats_for(table.heap)
        with self._engine_domain(jobs[0].table):
            pages_before = pool_stats.page_reads
            scan_started = time.perf_counter()
            try:
                report, retries = self._run_scan(
                    lambda: self.session.run_sgd_multi(
                        jobs[0].table,
                        uda,
                        epochs=prepared[0][0].candidate.passes,
                        chunk_size=self.chunk_size,
                        shuffle=self._shared_scan(jobs[0].table),
                        algorithm_label="service-fused",
                    )
                )
            except Exception as error:  # engine failure: nobody pays
                for job, *_ in prepared:
                    self._fail(job, error, finished)
                return
            self._scan_duration.observe(
                time.perf_counter() - scan_started, table=jobs[0].table
            )
            pages = pool_stats.page_reads - pages_before
            self._scan_pages_total.inc(pages, table=jobs[0].table)
            self.dispatch_log.append(
                (key, [job.job_id for job, *_ in prepared], pages)
            )
        for position, (job, _, _, sensitivity) in enumerate(prepared):
            self._release(
                job,
                report.models[position],
                sensitivity,
                dispatch="fused",
                group_size=len(prepared),
                group_pages=pages,
                finished=finished,
                scan_retries=retries,
            )

    def _dispatch_sequential(
        self, key: tuple, job: TrainingJob, finished: List[JobRecord]
    ) -> None:
        """The classic one-job-one-scan fallback (unfusable or fuse=False)."""
        table = self.session.catalog.get(job.table)
        resolved = self._prepare(job, table.num_tuples, finished)
        if resolved is None:
            return
        schedule, projection, sensitivity = resolved
        uda = SGDUDA(
            job.candidate.loss, schedule, job.candidate.batch_size, projection
        )
        record = self.registry.get(job.job_id)
        record.status = JobStatus.RUNNING
        record.trace.enter("scan")
        pool_stats = self.session.pool.stats_for(table.heap)
        with self._engine_domain(job.table):
            pages_before = pool_stats.page_reads
            scan_started = time.perf_counter()
            try:
                report, retries = self._run_scan(
                    lambda: self.session.run_sgd(
                        job.table,
                        uda,
                        epochs=job.candidate.passes,
                        chunk_size=self.chunk_size,
                        shuffle=self._shared_scan(job.table),
                        algorithm_label="service-sequential",
                    )
                )
            except Exception as error:
                self._fail(job, error, finished)
                return
            self._scan_duration.observe(
                time.perf_counter() - scan_started, table=job.table
            )
            pages = pool_stats.page_reads - pages_before
            self._scan_pages_total.inc(pages, table=job.table)
            self.dispatch_log.append((key, [job.job_id], pages))
        self._release(
            job,
            report.model,
            sensitivity,
            dispatch="sequential",
            group_size=1,
            group_pages=pages,
            finished=finished,
            scan_retries=retries,
        )

    def _dispatch_elevator(
        self, key: tuple, jobs: List[TrainingJob], finished: List[JobRecord]
    ) -> None:
        """ONE continuous scan loop for the table; jobs board mid-flight.

        The claimed jobs open the flight at the cursor's parked position
        (offset 0). While the loop runs, ``submit()``/``claim_window``
        route newly-arriving same-table jobs onto the flight; the driver
        admits them *between* chunks — their boarding offset is the
        cursor's current grid position — and each rider exits the moment
        its last epoch completes, back at its boarding chunk. The scan's
        page stream is paid once per cursor loop no matter how many
        riders are aboard; a rider's ``group_pages`` is the page span of
        its own ride — exactly its solo cost, ``passes * num_tuples``.

        Engine failures fail every admitted rider (budget refunded);
        routed-but-never-admitted boarders go back to the queue — they
        never started, so they retry on a fresh flight.
        """
        table_name = jobs[0].table
        table = self.session.catalog.get(table_name)
        pool_stats = self.session.pool.stats_for(table.heap)
        flight = _ElevatorFlight(capacity=self.batching_window)
        with self._admission_lock:
            if table_name in self._flights:  # pragma: no cover - busy-table
                # protocol serializes same-table dispatch; defend anyway.
                raise RuntimeError(f"table {table_name!r} already has an open flight")
            flight.boarders.extend(jobs)
            flight.occupancy = len(jobs)
            self._flights[table_name] = flight
        cursor = None
        riders: Dict[ElevatorRider, tuple] = {}
        job_ids: List[str] = []
        try:
            with self._engine_domain(table_name):
                shuffle = self._shared_scan(table_name)
                cursor = shuffle.cursor(self.chunk_size)
                elevator = ElevatorMultiSGDUDA(
                    num_tuples=table.num_tuples, dimension=table.dimension
                )
                pages_before = pool_stats.page_reads
                flight_started = time.perf_counter()
                try:
                    while True:
                        for job in self._take_boarders(flight):
                            self._admit_rider(
                                job, elevator, cursor, table,
                                pool_stats, flight, riders, job_ids, finished,
                            )
                        if not elevator.active:
                            break
                        features, labels = cursor.next_chunk()
                        for rider in elevator.fold_chunk(features, labels):
                            job, sensitivity, pages_at_boarding = riders[rider]
                            self._release(
                                job,
                                rider.model,
                                sensitivity,
                                dispatch="elevator",
                                group_size=elevator.riders_admitted,
                                group_pages=pool_stats.page_reads - pages_at_boarding,
                                finished=finished,
                                boarding_offset=rider.boarding_offset,
                                epochs_ridden=rider.epochs_completed,
                                scan_retries=0,
                            )
                            del riders[rider]
                            with self._admission_lock:
                                flight.occupancy -= 1
                except Exception as error:  # engine failure mid-flight
                    for job, _sensitivity, _pages in riders.values():
                        self._fail(job, error, finished)
                    riders.clear()
                self._scan_duration.observe(
                    time.perf_counter() - flight_started, table=table_name
                )
                flight_pages = pool_stats.page_reads - pages_before
                self._scan_pages_total.inc(flight_pages, table=table_name)
                if elevator.riders_admitted:
                    self._flight_riders.observe(
                        elevator.riders_admitted, table=table_name
                    )
                self.dispatch_log.append((key, job_ids, flight_pages))
        finally:
            with self._admission_lock:
                flight.closed = True
                self._flights.pop(table_name, None)
                leftover = flight.boarders
                flight.boarders = []
                # Routed but never admitted: back to the queue for the
                # next window/flight (their reservations still stand).
                for job in leftover:
                    self.queue.push(job)
            if cursor is not None:
                # Park at 0: the next flight's openers board at offset 0,
                # so an uncontended workload stays window-equivalent and
                # its releases stay cache-eligible.
                cursor.park()

    def _take_boarders(self, flight: _ElevatorFlight) -> List[TrainingJob]:
        with self._admission_lock:
            boarding = flight.boarders
            flight.boarders = []
            return boarding

    def _admit_rider(
        self,
        job: TrainingJob,
        elevator: ElevatorMultiSGDUDA,
        cursor,
        table: TableInfo,
        pool_stats,
        flight: _ElevatorFlight,
        riders: Dict[ElevatorRider, tuple],
        job_ids: List[str],
        finished: List[JobRecord],
    ) -> None:
        """Board one job at the cursor's current grid position (or fail
        it pre-I/O if its parameters don't resolve, exactly like the
        windowed paths' ``_prepare`` step)."""
        resolved = self._prepare(job, table.num_tuples, finished)
        if resolved is None:
            with self._admission_lock:
                flight.occupancy -= 1
            return
        schedule, projection, sensitivity = resolved
        uda = SGDUDA(
            job.candidate.loss, schedule, job.candidate.batch_size, projection
        )
        record = self.registry.get(job.job_id)
        record.status = JobStatus.RUNNING
        # Boarders routed onto the flight never pass claim_window — their
        # queued span closes here, at admission onto the cursor.
        if record.trace.current == "queued":
            self._mark_claimed(job)
        record.trace.enter("scan")
        rider = elevator.admit(
            uda, passes=job.candidate.passes, boarding_offset=cursor.position
        )
        self._boardings_total.inc(table=job.table)
        riders[rider] = (job, sensitivity, pool_stats.page_reads)
        job_ids.append(job.job_id)

    # -- shared steps ------------------------------------------------------------

    def _run_scan(self, scan: Callable[[], object]):
        """Run one windowed scan with bounded retry on transient faults.

        A :class:`~repro.rdbms.storage.TransientPageFault` (a flaky
        device, an injected fault) retries up to ``scan_retries`` times
        with linear backoff; every attempt replays the identical shared
        permutation from tuple 0, so whichever attempt succeeds releases
        bitwise the weights a clean run would have. Pages the failed
        attempts did read stay in the dispatch's before/after delta —
        the group's page accounting reports what the fault actually
        cost, not what a clean run would have cost. Any other exception
        (including a permanent :class:`PageFaultError`) propagates to
        the caller's engine-failure handling at once.

        Returns ``(result, retries_taken)`` so each dispatch can stamp
        its jobs' traces with what the fault actually cost.
        """
        attempt = 0
        while True:
            try:
                return scan(), attempt
            except TransientPageFault:
                attempt += 1
                if attempt > self.scan_retries:
                    raise
                self.scan_retries_used += 1
                self._scan_retries_total.inc()
                if self.retry_backoff_seconds > 0.0:
                    time.sleep(self.retry_backoff_seconds * attempt)

    def _table_lock(self, table_name: str) -> threading.Lock:
        """The table's engine lock (one shared lock if parallel_scans
        is off — the serialized reference configuration)."""
        if not self.parallel_scans:
            return self._global_engine_lock
        with self._table_locks_guard:
            return self._table_locks.setdefault(table_name, threading.Lock())

    @contextmanager
    def _engine_domain(self, table_name: str):
        """Hold ``table_name``'s engine domain for one scan.

        Serializes with scans of the same table only; tracks the
        distinct-table scan overlap the server reports.
        """
        with self._table_lock(table_name):
            with self._overlap_lock:
                self._scanning.add(table_name)
                self.peak_overlap = max(self.peak_overlap, len(self._scanning))
                self.table_scans[table_name] = self.table_scans.get(table_name, 0) + 1
            try:
                yield
            finally:
                with self._overlap_lock:
                    self._scanning.discard(table_name)

    def _tick(self) -> int:
        """Advance the logical clock (thread-safe; workers finish jobs
        concurrently with new admissions)."""
        with self._admission_lock:
            self._clock += 1
            return self._clock

    def _take_reservation(self, job_id: str) -> Optional[BudgetReservation]:
        with self._admission_lock:
            return self._reservations.pop(job_id, None)

    def _prepare(
        self, job: TrainingJob, m: int, finished: List[JobRecord]
    ) -> Optional[Tuple]:
        """Resolve schedule/projection and the sensitivity bound, or fail
        the job *before* it costs any I/O (non-releasable losses — e.g. a
        non-smooth hinge — die here with their budget refunded)."""
        try:
            schedule, projection, properties = job.candidate.resolve(m)
            sensitivity = sensitivity_for_schedule(
                properties,
                schedule,
                m,
                job.candidate.passes,
                job.candidate.batch_size,
            )
        except Exception as error:
            self._fail(job, error, finished)
            return None
        return schedule, projection, sensitivity

    def _release(
        self,
        job: TrainingJob,
        noiseless: np.ndarray,
        sensitivity: SensitivityBound,
        *,
        dispatch: str,
        group_size: int,
        group_pages: int,
        finished: List[JobRecord],
        boarding_offset: int = 0,
        epochs_ridden: int = 0,
        scan_retries: int = 0,
    ) -> None:
        """The bolt-on epilogue + budget commit for one trained job."""
        record = self.registry.get(job.job_id)
        # The scan span closes here, carrying what the scan cost; these
        # attrs deliberately mirror the record fields set below (the
        # telemetry-consistency tests pin the equality). Telemetry reads
        # clocks and counters only — the noise stream spawned next is
        # untouched by any of this.
        record.trace.enter(
            "epilogue",
            pages=group_pages,
            retries=scan_retries,
            boarding_offset=boarding_offset,
            epochs_ridden=epochs_ridden,
        )
        if epochs_ridden:
            self._epochs_ridden_total.inc(epochs_ridden)
        _, noise_rng = job.spawn_streams()
        mechanism = mechanism_for(job.privacy)
        noise = mechanism.sample(
            noiseless.shape[0], sensitivity.value, job.privacy, noise_rng
        )
        record.trace.enter("commit")
        reservation = self._take_reservation(job.job_id)
        try:
            receipt = self.ledger.commit(reservation)
        except Exception as error:  # pragma: no cover - reserve guarantees room
            self._fail(job, error, finished)
            return
        # Result fields land before the status flips to COMPLETED, so a
        # concurrent autosave snapshot can never capture a completed
        # record with a half-written release.
        record.model = noiseless + noise
        record.receipt = receipt
        record.sensitivity = float(sensitivity.value)
        record.noise_norm = float(np.linalg.norm(noise))
        record.dispatch = dispatch
        record.group_size = group_size
        record.group_pages = group_pages
        record.epochs = job.candidate.passes
        record.boarding_offset = boarding_offset
        record.epochs_ridden = epochs_ridden
        record.table_fingerprint = self.fingerprint_table(job.table) or ""
        record.scan_seed = self.scan_seed
        record.finished_at = self._tick()
        record.trace.close()
        record.status = JobStatus.COMPLETED
        self.prime_cache(record)
        finished.append(record)
        record.mark_done()

    def _fail(
        self, job: TrainingJob, error: Exception, finished: List[JobRecord]
    ) -> None:
        """Terminal failure: refund the reservation, record the reason."""
        reservation = self._take_reservation(job.job_id)
        if reservation is not None:
            self.ledger.refund(reservation)
        record = self.registry.get(job.job_id)
        record.error = f"{type(error).__name__}: {error}"
        record.finished_at = self._tick()
        record.trace.close(error=type(error).__name__)
        record.status = JobStatus.FAILED
        finished.append(record)
        record.mark_done()

    def _shared_scan(self, table_name: str):
        """The table's service-wide permutation (seeded by table, not job)."""
        return self.session.shared_scan(
            table_name,
            random_state=np.random.SeedSequence(
                [self.scan_seed, zlib.crc32(table_name.encode("utf-8"))]
            ),
        )
