"""The model registry and results store.

Every job the service has ever seen lives here as a :class:`JobRecord`:
its status, the released weights (for completed jobs), the budget
receipt that paid for them, and the execution metadata operators ask
about (which dispatch ran it, with how many scan-mates, how many page
requests its group charged). The registry is the *only* interface for
reading results — the scheduler never hands weights back directly — so
whatever queries later PRs need (per-tenant dashboards, model GC,
lineage) have one place to grow.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.service.jobs import JobStatus, TrainingJob
from repro.service.ledger import BudgetReceipt


@dataclass
class JobRecord:
    """Everything the service knows about one job."""

    job: TrainingJob
    status: JobStatus
    #: The differentially private release (None unless COMPLETED).
    model: Optional[np.ndarray] = None
    #: Proof of the committed spend (None unless COMPLETED).
    receipt: Optional[BudgetReceipt] = None
    #: L2-sensitivity the noise was calibrated to.
    sensitivity: Optional[float] = None
    #: Norm of the drawn noise vector (diagnostic).
    noise_norm: Optional[float] = None
    #: "fused" | "sequential" for executed jobs, "" otherwise.
    dispatch: str = ""
    #: How many jobs shared the scan (1 for sequential dispatch).
    group_size: int = 0
    #: Page requests the job's scan group made, total (shared, not split:
    #: a 32-job fused group lists the same ~1-scan figure on every record,
    #: because that IS what the group cost).
    group_pages: int = 0
    #: Epochs the scan ran (the job's candidate.passes).
    epochs: int = 0
    #: Human-readable failure/rejection reason.
    error: str = ""
    #: Logical service ticks (submission order / completion order).
    submitted_at: int = -1
    finished_at: int = -1

    @property
    def job_id(self) -> str:
        return self.job.job_id


class ModelRegistry:
    """Thread-safe store of job records, queryable by tenant/table/status."""

    def __init__(self) -> None:
        self._records: Dict[str, JobRecord] = {}
        self._order: List[str] = []
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def add(self, record: JobRecord) -> JobRecord:
        with self._lock:
            job_id = record.job.job_id
            if not job_id:
                raise ValueError("records need a job with an assigned job_id")
            if job_id in self._records:
                raise ValueError(f"job {job_id!r} is already registered")
            self._records[job_id] = record
            self._order.append(job_id)
            return record

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise KeyError(f"unknown job {job_id!r}")
            return record

    def status(self, job_id: str) -> JobStatus:
        return self.get(job_id).status

    def model(self, job_id: str) -> np.ndarray:
        """The released weights; raises unless the job completed."""
        record = self.get(job_id)
        if record.status is not JobStatus.COMPLETED or record.model is None:
            raise ValueError(
                f"job {job_id!r} has no released model (status: {record.status})"
            )
        return record.model

    def jobs(
        self,
        principal: Optional[str] = None,
        table: Optional[str] = None,
        status: Optional[JobStatus] = None,
    ) -> List[JobRecord]:
        """Records in submission order, filtered by any of the three axes."""
        with self._lock:
            records = [self._records[job_id] for job_id in self._order]
        return [
            record
            for record in records
            if (principal is None or record.job.principal == principal)
            and (table is None or record.job.table == table)
            and (status is None or record.status is status)
        ]

    def counts(self) -> Dict[str, int]:
        """Status histogram (keys are the status values, e.g. "completed")."""
        histogram: Dict[str, int] = {status.value: 0 for status in JobStatus}
        with self._lock:
            for record in self._records.values():
                histogram[record.status.value] += 1
        return histogram
