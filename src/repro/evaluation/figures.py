"""Per-figure experiment drivers.

Each ``figure*`` function regenerates the data behind one figure of the
paper and returns ``{"x": ..., "series": {...}, "meta": {...}}`` ready for
:func:`repro.evaluation.reporting.format_series`. Sizes and grids default
to laptop-fast settings; every function takes the paper's parameters
explicitly so a patient caller can push them to full scale.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.data.dataset import Dataset, TrainTestPair
from repro.data.projection import project_dataset
from repro.data.registry import get_spec
from repro.evaluation.harness import (
    BINARY_EPSILONS,
    MNIST_EPSILONS,
    SweepResult,
    accuracy_sweep,
    private_tuning_sweep,
)
from repro.evaluation.scenarios import Scenario, TrainSettings
from repro.rdbms.bismarck import BismarckSession, integration_report
from repro.rdbms.cost_model import CostModel
from repro.rdbms.synthesizer import analytic_counters, dataset_size_gb
from repro.utils.rng import RandomState


def load_experiment_dataset(
    name: str,
    scale: Optional[float] = None,
    seed: int = 0,
) -> TrainTestPair:
    """Load a registry dataset, applying the MNIST 784→50 projection."""
    spec = get_spec(name)
    pair = spec.load(scale=scale, seed=seed)
    if spec.projected_dimension is not None:
        train, projection = project_dataset(
            pair.train, spec.projected_dimension, random_state=seed
        )
        test, _ = project_dataset(
            pair.test, spec.projected_dimension, projection=projection
        )
        return TrainTestPair(train=train, test=test)
    return pair


def epsilons_for(name: str) -> Sequence[float]:
    """The paper's per-dataset ε grid (MNIST is 10-class, so larger ε)."""
    return MNIST_EPSILONS if name.lower() == "mnist" else BINARY_EPSILONS


# ---------------------------------------------------------------------------
# Figure 1 / Section 4.2 — integration effort
# ---------------------------------------------------------------------------


def figure1_integration() -> dict:
    """The integration-effort comparison as measured on our substrate."""
    report = integration_report()
    return {
        "x": ["bolton", "whitebox"],
        "series": {
            "integration_loc": [
                report["bolton_integration_loc"],
                report["whitebox_integration_loc"],
            ]
        },
        "meta": report,
    }


# ---------------------------------------------------------------------------
# Figure 2 — scalability
# ---------------------------------------------------------------------------


def figure2_scalability(
    sizes: Sequence[int] = (10_000_000, 20_000_000, 30_000_000, 40_000_000, 50_000_000),
    dimension: int = 50,
    batch_size: int = 1,
    epochs: int = 1,
    buffer_pool_pages: int = 8_000_000,
    algorithms: Sequence[str] = ("noiseless", "bolton", "scs13", "bst14"),
) -> dict:
    """Per-epoch simulated runtime vs dataset size.

    Defaults reproduce panel (a) (in-memory: pool of 8M pages ≈ 64 GB).
    For panel (b) pass disk-scale ``sizes`` (e.g. 2e8..1.2e9) and a small
    pool so every epoch re-reads from disk.
    """
    model = CostModel()
    series: Dict[str, List[float]] = {a: [] for a in algorithms}
    for size in sizes:
        for algorithm in algorithms:
            work = analytic_counters(
                size,
                dimension,
                epochs,
                batch_size,
                algorithm,
                buffer_pool_pages=buffer_pool_pages,
            )
            series[algorithm].append(model.charge(work).total / 60.0)
    return {
        "x": [s / 1e6 for s in sizes],
        "series": series,
        "meta": {
            "x_label": "examples (millions)",
            "y_label": "simulated runtime (minutes)",
            "sizes_gb": [dataset_size_gb(s, dimension) for s in sizes],
            "in_memory": [
                dataset_size_gb(s, dimension) * 1e9 / 8192 <= buffer_pool_pages
                for s in sizes
            ],
        },
    }


# ---------------------------------------------------------------------------
# Figure 4 — effect of passes and batch size on accuracy (MNIST)
# ---------------------------------------------------------------------------


def figure4_passes(
    pair: TrainTestPair,
    scenario: Scenario,
    epsilons: Sequence[float] = MNIST_EPSILONS,
    passes_grid: Sequence[int] = (1, 10, 20),
    batch_size: int = 1,
    regularization: float = 1e-4,
    random_state: RandomState = 0,
) -> dict:
    """Panels (a)/(b): "ours" accuracy vs ε for 1/10/20 passes.

    Panel (a) is Test 1 (convex, b = 1): more passes ⇒ more noise ⇒ worse.
    Panel (b) is Test 3 (strongly convex, b = 50): more passes ⇒ better.
    """
    series: Dict[str, List[float]] = {}
    for passes in passes_grid:
        settings = TrainSettings(
            scenario,
            epsilon=1.0,
            passes=passes,
            batch_size=batch_size,
            regularization=regularization,
        )
        sweep = accuracy_sweep(
            pair.train,
            pair.test,
            scenario,
            epsilons,
            algorithms=["ours"],
            settings=settings,
            random_state=random_state,
        )
        label = f"{passes} pass" + ("es" if passes > 1 else "")
        series[label] = sweep.series["ours"]
    return {
        "x": list(epsilons),
        "series": series,
        "meta": {"scenario": scenario.name, "batch_size": batch_size},
    }


def figure4_batch_size(
    pair: TrainTestPair,
    epsilons: Sequence[float] = MNIST_EPSILONS,
    batch_grid: Sequence[int] = (1, 10, 50),
    passes: int = 20,
    random_state: RandomState = 0,
) -> dict:
    """Panel (c): Test 1 at 20 passes, batch size in {1, 10, 50}."""
    series: Dict[str, List[float]] = {}
    for batch in batch_grid:
        settings = TrainSettings(
            Scenario.CONVEX_PURE, epsilon=1.0, passes=passes, batch_size=batch
        )
        sweep = accuracy_sweep(
            pair.train,
            pair.test,
            Scenario.CONVEX_PURE,
            epsilons,
            algorithms=["ours"],
            settings=settings,
            random_state=random_state,
        )
        series[f"mini-batch = {batch}"] = sweep.series["ours"]
    return {
        "x": list(epsilons),
        "series": series,
        "meta": {"passes": passes},
    }


# ---------------------------------------------------------------------------
# Figure 5 — runtime vs epochs and vs batch size (executed, simulated cost)
# ---------------------------------------------------------------------------


def figure5_runtime_vs_epochs(
    dataset: Dataset,
    epoch_grid: Sequence[int] = (1, 5, 10, 20),
    batch_size: int = 10,
    epsilon: float = 0.1,
    regularization: float = 1e-4,
    random_state: RandomState = 0,
) -> dict:
    """Row 1 of Figure 5: strongly convex (ε,δ)-DP runtime vs epochs."""
    from repro.optim.losses import LogisticLoss

    loss = LogisticLoss(regularization=regularization)
    radius = 1.0 / regularization
    delta = 1.0 / dataset.size**2
    series: Dict[str, List[float]] = {
        "noiseless": [],
        "ours": [],
        "scs13": [],
        "bst14": [],
    }
    for epochs in epoch_grid:
        session = BismarckSession(buffer_pool_pages=1 << 20)
        session.load_table("t", dataset.features, dataset.labels)
        session.warm_cache("t")
        from repro.optim.schedules import CappedInverseTSchedule

        properties = loss.properties(radius=radius)
        schedule = CappedInverseTSchedule(
            properties.smoothness, properties.strong_convexity
        )
        series["noiseless"].append(
            session.run_noiseless(
                "t", loss, schedule, epochs, batch_size, random_state=random_state
            ).simulated_seconds
        )
        series["ours"].append(
            session.run_bolton_private(
                "t",
                loss,
                epsilon,
                delta=delta,
                epochs=epochs,
                batch_size=batch_size,
                radius=radius,
                random_state=random_state,
            ).simulated_seconds
        )
        series["scs13"].append(
            session.run_scs13(
                "t",
                loss,
                epsilon,
                delta=delta,
                epochs=epochs,
                batch_size=batch_size,
                radius=radius,
                random_state=random_state,
            ).simulated_seconds
        )
        series["bst14"].append(
            session.run_bst14(
                "t",
                loss,
                epsilon,
                delta,
                epochs=epochs,
                batch_size=batch_size,
                radius=radius,
                random_state=random_state,
            ).simulated_seconds
        )
    return {
        "x": list(epoch_grid),
        "series": series,
        "meta": {"batch_size": batch_size, "dataset": dataset.name},
    }


def figure5_runtime_vs_batch(
    dataset: Dataset,
    batch_grid: Sequence[int] = (1, 10, 100, 500, 1000),
    epochs: int = 1,
    epsilon: float = 0.1,
    regularization: float = 1e-4,
    random_state: RandomState = 0,
) -> dict:
    """Row 2 of Figure 5: runtime vs mini-batch size for one epoch."""
    from repro.optim.losses import LogisticLoss
    from repro.optim.schedules import CappedInverseTSchedule

    loss = LogisticLoss(regularization=regularization)
    radius = 1.0 / regularization
    delta = 1.0 / dataset.size**2
    properties = loss.properties(radius=radius)
    series: Dict[str, List[float]] = {
        "noiseless": [],
        "ours": [],
        "scs13": [],
        "bst14": [],
    }
    for batch in batch_grid:
        batch = min(batch, dataset.size)
        session = BismarckSession(buffer_pool_pages=1 << 20)
        session.load_table("t", dataset.features, dataset.labels)
        session.warm_cache("t")
        schedule = CappedInverseTSchedule(
            properties.smoothness, properties.strong_convexity
        )
        series["noiseless"].append(
            session.run_noiseless(
                "t", loss, schedule, epochs, batch, random_state=random_state
            ).simulated_seconds
        )
        series["ours"].append(
            session.run_bolton_private(
                "t",
                loss,
                epsilon,
                delta=delta,
                epochs=epochs,
                batch_size=batch,
                radius=radius,
                random_state=random_state,
            ).simulated_seconds
        )
        series["scs13"].append(
            session.run_scs13(
                "t",
                loss,
                epsilon,
                delta=delta,
                epochs=epochs,
                batch_size=batch,
                radius=radius,
                random_state=random_state,
            ).simulated_seconds
        )
        series["bst14"].append(
            session.run_bst14(
                "t",
                loss,
                epsilon,
                delta,
                epochs=epochs,
                batch_size=batch,
                radius=radius,
                random_state=random_state,
            ).simulated_seconds
        )
    return {
        "x": list(batch_grid),
        "series": series,
        "meta": {"epochs": epochs, "dataset": dataset.name},
    }


# ---------------------------------------------------------------------------
# Figure 10 — accuracy vs mini-batch size (50..200)
# ---------------------------------------------------------------------------


def figure10_minibatch(
    pair: TrainTestPair,
    epsilons: Sequence[float] = MNIST_EPSILONS,
    batch_grid: Sequence[int] = (50, 100, 150, 200),
    passes: int = 10,
    regularization: float = 1e-4,
    random_state: RandomState = 0,
) -> List[SweepResult]:
    """One Test-4 sweep per batch size, all four algorithms."""
    results = []
    scenario = Scenario.STRONGLY_CONVEX_APPROX
    for batch in batch_grid:
        settings = TrainSettings(
            scenario,
            epsilon=1.0,
            passes=passes,
            batch_size=batch,
            regularization=regularization,
        )
        results.append(
            accuracy_sweep(
                pair.train,
                pair.test,
                scenario,
                epsilons,
                settings=settings,
                random_state=random_state,
            )
        )
    return results


# ---------------------------------------------------------------------------
# Figures 3 / 6 / 7 / 8 / 9 — thin wrappers over the harness
# ---------------------------------------------------------------------------


def accuracy_figure_row(
    dataset_name: str,
    *,
    tuning: str = "fixed",
    scale: Optional[float] = None,
    scenarios: Sequence[Scenario] = tuple(Scenario),
    epsilons: Optional[Sequence[float]] = None,
    model: str = "logistic",
    passes: int = 10,
    batch_size: int = 50,
    regularization: float = 1e-4,
    grid=None,
    seed: int = 0,
) -> List[SweepResult]:
    """One figure row: the four scenario panels for one dataset.

    ``tuning='fixed'`` reproduces Figure 3's setting (and Figure 8);
    ``tuning='private'`` reproduces Figures 6/7/9. ``model='huber'``
    switches to the Huber SVM of Figure 7.
    """
    pair = load_experiment_dataset(dataset_name, scale=scale, seed=seed)
    eps = list(epsilons) if epsilons is not None else list(epsilons_for(dataset_name))
    results = []
    for scenario in scenarios:
        settings = TrainSettings(
            scenario,
            epsilon=1.0,
            passes=passes,
            batch_size=batch_size,
            regularization=regularization,
            model=model,
        )
        if tuning == "fixed":
            results.append(
                accuracy_sweep(
                    pair.train, pair.test, scenario, eps,
                    settings=settings, random_state=seed,
                )
            )
        elif tuning == "private":
            results.append(
                private_tuning_sweep(
                    pair.train, pair.test, scenario, eps,
                    settings=settings, grid=grid, random_state=seed,
                )
            )
        else:
            raise ValueError(f"unknown tuning mode {tuning!r}")
    return results
