"""repro — a reproduction of *Bolt-on Differential Privacy for Scalable
Stochastic Gradient Descent-based Analytics* (Wu, Li, Kumar, Chaudhuri,
Jha, Naughton — SIGMOD 2017).

Quickstart
----------
>>> import numpy as np
>>> from repro import LogisticLoss, private_convex_psgd
>>> from repro.data import protein_like
>>> train, test = protein_like(seed=0).split()
>>> result = private_convex_psgd(
...     train.features, train.labels, LogisticLoss(),
...     epsilon=1.0, passes=10, batch_size=50, random_state=0,
... )
>>> accuracy = result.accuracy(test.features, test.labels)

Subpackages
-----------
``repro.core``
    Algorithms 1–2 (the bolt-on private PSGD), sensitivity analysis,
    noise mechanisms, accounting, convergence bounds.
``repro.optim``
    The non-private PSGD substrate (losses, schedules, projections).
``repro.baselines``
    SCS13 and BST14 white-box private SGD.
``repro.rdbms``
    A miniature in-RDBMS analytics engine standing in for Bismarck on
    PostgreSQL (storage, UDAs, the epoch controller, the cost model).
``repro.data``
    Synthetic stand-ins for the paper's datasets, preprocessing, random
    projection.
``repro.tuning``
    Public and private (Algorithm 3) hyper-parameter tuning.
``repro.multiclass``
    One-vs-rest training with privacy-budget splitting.
``repro.evaluation``
    The experiment harness regenerating every table and figure.
``repro.service``
    The multi-tenant training service: concurrent job scheduling with
    shared-scan fusion and a two-phase privacy-budget ledger.
"""

from repro.core import (
    BoltOnCandidate,
    BoltOnPrivateClassifier,
    BoltOnTrainerFactory,
    GaussianMechanism,
    PrivateHuberSVM,
    PrivateLogisticRegression,
    PrivacyAccountant,
    PrivacyParameters,
    PrivateTrainingResult,
    SensitivityBound,
    SphericalLaplaceMechanism,
    noiseless_psgd,
    private_convex_psgd,
    private_psgd,
    private_psgd_fleet,
    private_strongly_convex_psgd,
    train_bolt_on,
)
from repro.service import TrainingJob, TrainingService
from repro.optim import (
    HingeLoss,
    HuberSVMLoss,
    LeastSquaresLoss,
    LogisticLoss,
    Loss,
    ModelSpec,
    MultiModelPSGD,
    PSGD,
    PSGDConfig,
    run_psgd,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "private_convex_psgd",
    "private_strongly_convex_psgd",
    "private_psgd",
    "noiseless_psgd",
    "BoltOnPrivateClassifier",
    "PrivateLogisticRegression",
    "PrivateHuberSVM",
    "PrivateTrainingResult",
    "PrivacyParameters",
    "PrivacyAccountant",
    "SensitivityBound",
    "SphericalLaplaceMechanism",
    "GaussianMechanism",
    "Loss",
    "LogisticLoss",
    "HuberSVMLoss",
    "LeastSquaresLoss",
    "HingeLoss",
    "PSGD",
    "PSGDConfig",
    "run_psgd",
    "ModelSpec",
    "MultiModelPSGD",
    "BoltOnCandidate",
    "BoltOnTrainerFactory",
    "private_psgd_fleet",
    "train_bolt_on",
    "TrainingService",
    "TrainingJob",
]
