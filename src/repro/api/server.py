"""The HTTP front-end: ``repro-api/v1`` over a stdlib threading server.

:class:`ServiceApiServer` wraps one :class:`~repro.service.TrainingService`
behind ``http.server.ThreadingHTTPServer`` (no dependencies beyond the
standard library) and serves the verb surface:

====== ============================ ====================================
Method Path                         Verb
====== ============================ ====================================
POST   ``/v1/jobs``                 ``submit()`` — returns the job
                                    record envelope immediately (rides
                                    the sub-ms async admission path)
GET    ``/v1/jobs/{id}``            ``result()`` — status + result view
GET    ``/v1/jobs/{id}/model``      ``model()`` — hex-exact weights
GET    ``/v1/jobs/{id}/trace``      ``trace()`` — lifecycle spans
POST   ``/v1/jobs/{id}/cancel``     ``cancel()``
GET    ``/v1/budgets``              ``budgets()``
GET    ``/v1/metrics``              ``metrics()`` — Prometheus text, or
                                    JSON via ``Accept`` / ``?format=``
GET    ``/v1/healthz``              ``health()`` (unauthenticated)
POST   ``/v1/admin/shutdown``       graceful stop (admin token only)
====== ============================ ====================================

**Auth.** Every endpoint except ``/v1/healthz`` requires
``Authorization: Bearer <token>``; the server's token map assigns each
token a principal, and a submit whose body names a *different*
principal is rejected (403 ``principal_mismatch``) — budget identity is
enforced at the edge, before the ledger ever sees the job.

**Errors.** Any :class:`~repro.service.errors.ServiceError` a verb
raises maps 1:1 onto the fault envelope ``{"error": {"code",
"message"}}`` with the class's HTTP status; bare ``KeyError`` /
``ValueError`` from pre-taxonomy corners degrade to ``not_found`` /
``invalid_request``. The client rebuilds the same exception classes
from the codes, so both transports fail identically.

**Telemetry.** Requests tick ``repro_http_requests_total{method,route,
status}`` and observe ``repro_http_request_seconds{route}`` in the
service's own metrics registry — route labels are the *patterns*
(``/v1/jobs/{id}``), never raw paths, so cardinality stays bounded.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.api import wire
from repro.service.errors import (
    NotCancellable,
    PrincipalMismatch,
    ServiceError,
    Unauthorized,
)
from repro.service.server import TrainingService

#: Max accepted request-body size (a submit payload is a few KB; nothing
#: on this API legitimately streams megabytes at the server).
MAX_BODY_BYTES = 4 * 1024 * 1024

_JOB_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9._:-]+)(/model|/trace|/cancel)?$")


class ServiceApiServer:
    """One training service, one listening socket, many tenant tokens.

    ``tokens`` maps bearer token → principal. ``admin_token`` (optional,
    and deliberately not in the tenant map unless you put it there)
    guards ``POST /v1/admin/shutdown``. ``port=0`` binds an ephemeral
    port — read :attr:`port` / :attr:`url` after construction.
    """

    def __init__(
        self,
        service: TrainingService,
        tokens: Mapping[str, str],
        *,
        admin_token: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.tokens: Dict[str, str] = dict(tokens)
        self.admin_token = admin_token
        #: Set once a graceful stop was requested (admin endpoint or
        #: :meth:`request_shutdown`); the CLI's hold loop waits on it.
        self.shutdown_requested = threading.Event()
        self._thread: Optional[threading.Thread] = None
        reg = service.metrics_registry
        self._requests_total = reg.counter(
            "repro_http_requests_total",
            "HTTP requests served, by method, route pattern, and status.",
            ("method", "route", "status"),
        )
        self._request_seconds = reg.histogram(
            "repro_http_request_seconds",
            "HTTP request handling latency, by route pattern.",
            ("route",),
        )
        api = self

        class _Handler(_ApiHandler):
            server_api = api

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True

    # -- lifecycle ---------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceApiServer":
        """Serve on a daemon thread; returns self (``.url`` is live)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-api",
                daemon=True,
            )
            self._thread.start()
        return self

    def request_shutdown(self) -> None:
        """Flag a graceful stop and unwind ``serve_forever`` without
        blocking the calling (request) thread."""
        if self.shutdown_requested.is_set():
            return
        self.shutdown_requested.set()
        threading.Thread(target=self._httpd.shutdown, daemon=True).start()

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        self.shutdown_requested.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ServiceApiServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


class _ApiHandler(BaseHTTPRequestHandler):
    """Route, authenticate, dispatch, envelope — one request at a time."""

    server_api: ServiceApiServer  # installed by ServiceApiServer

    # HTTP/1.0 (the default): one request per connection, closed by the
    # server — no keep-alive reader threads to leak.

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is the metrics registry's job

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    # -- plumbing ----------------------------------------------------------------

    def _dispatch(self, method: str) -> None:
        started = time.perf_counter()
        route = "(unmatched)"
        try:
            route, status, body, content_type = self._route(method)
        except ServiceError as error:
            status, body, content_type = self._fault(error.http_status, error.code, error)
        except KeyError as error:
            message = error.args[0] if error.args else str(error)
            status, body, content_type = self._fault(404, "not_found", message)
        except ValueError as error:
            status, body, content_type = self._fault(400, "invalid_request", error)
        except Exception as error:  # pragma: no cover - defensive
            status, body, content_type = self._fault(500, "internal", error)
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response; nothing to answer
        api = self.server_api
        api._requests_total.inc(
            method=method, route=route, status=str(status)
        )
        api._request_seconds.observe(time.perf_counter() - started, route=route)

    @staticmethod
    def _fault(status: int, code: str, message) -> Tuple[int, bytes, str]:
        body = json.dumps(
            wire.error_envelope(code, str(message)), sort_keys=True
        ).encode("utf-8")
        return status, body, "application/json"

    def _json(self, status: int, payload: dict) -> Tuple[int, bytes, str]:
        body = (
            json.dumps(wire.envelope(payload), sort_keys=True) + "\n"
        ).encode("utf-8")
        return status, body, "application/json"

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body over {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"request body is not JSON: {error}") from None
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _bearer_token(self) -> Optional[str]:
        header = self.headers.get("Authorization") or ""
        scheme, _, token = header.partition(" ")
        if scheme.lower() != "bearer" or not token.strip():
            return None
        return token.strip()

    def _principal(self) -> str:
        """The token-authenticated principal, or 401."""
        token = self._bearer_token()
        if token is None:
            raise Unauthorized(
                "missing bearer token: send 'Authorization: Bearer <token>'"
            )
        principal = self.server_api.tokens.get(token)
        if principal is None:
            raise Unauthorized("unknown bearer token")
        return principal

    # -- routing -----------------------------------------------------------------

    def _route(self, method: str) -> Tuple[str, int, bytes, str]:
        split = urlsplit(self.path)
        path, query = split.path, parse_qs(split.query)
        service = self.server_api.service

        if path == "/v1/healthz":
            self._expect(method, "GET")
            view = wire.HealthView.from_health(service.health())
            return ("/v1/healthz", *self._json(200, view.to_payload()))

        if path == "/v1/admin/shutdown":
            self._expect(method, "POST")
            return ("/v1/admin/shutdown", *self._admin_shutdown())

        if path == "/v1/metrics":
            self._expect(method, "GET")
            return ("/v1/metrics", *self._metrics(query))

        if path == "/v1/budgets":
            self._expect(method, "GET")
            self._principal()
            views = [
                wire.BudgetView.from_statement(statement).to_payload()
                for statement in service.budgets()
            ]
            return ("/v1/budgets", *self._json(200, {"budgets": views}))

        if path == "/v1/jobs":
            self._expect(method, "POST")
            return ("/v1/jobs", *self._submit())

        match = _JOB_PATH.match(path)
        if match:
            job_id, leaf = match.group(1), match.group(2) or ""
            route = f"/v1/jobs/{{id}}{leaf}"
            self._expect(method, "POST" if leaf == "/cancel" else "GET")
            if leaf == "/cancel":
                return (route, *self._cancel(job_id))
            self._principal()
            if leaf == "/model":
                payload = {
                    "job_id": job_id,
                    "model": wire.encode_weights(service.model(job_id)),
                }
                return (route, *self._json(200, payload))
            if leaf == "/trace":
                payload = {
                    "job_id": job_id,
                    "trace": service.trace(job_id).payload(),
                }
                return (route, *self._json(200, payload))
            view = wire.JobView.from_record(service.result(job_id))
            return (route, *self._json(200, {"job": view.to_payload()}))

        raise ServiceApiError(404, "unknown_route", f"no such endpoint: {path}")

    @staticmethod
    def _expect(method: str, allowed: str) -> None:
        if method != allowed:
            raise ServiceApiError(
                405, "method_not_allowed", f"use {allowed} on this endpoint"
            )

    # -- endpoint bodies ---------------------------------------------------------

    def _submit(self) -> Tuple[int, bytes, str]:
        principal = self._principal()
        try:
            request = wire.SubmitRequest.from_payload(self._read_body())
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed submit payload: {error}") from None
        if request.principal != principal:
            raise PrincipalMismatch(
                f"token authenticates {principal!r} but the submit names "
                f"principal {request.principal!r}; budgets are charged to "
                "the authenticated principal only"
            )
        record = self.server_api.service.submit(
            request.principal,
            request.table,
            request.loss,
            epsilon=request.epsilon,
            delta=request.delta,
            passes=request.passes,
            batch_size=request.batch_size,
            eta=request.eta,
            radius=request.radius,
            priority=request.priority,
            seed=request.seed,
        )
        view = wire.JobView.from_record(record)
        return self._json(200, {"job": view.to_payload()})

    def _cancel(self, job_id: str) -> Tuple[int, bytes, str]:
        self._principal()
        service = self.server_api.service
        if not service.cancel(job_id):
            raise NotCancellable(
                f"job {job_id!r} is not cancellable: it was already claimed "
                "into a scan window or reached a terminal state"
            )
        view = wire.JobView.from_record(service.result(job_id))
        return self._json(200, {"cancelled": True, "job": view.to_payload()})

    def _metrics(self, query: Dict[str, list]) -> Tuple[int, bytes, str]:
        self._principal()
        fmt = (query.get("format") or [None])[0]
        if fmt is None:
            accept = self.headers.get("Accept") or ""
            fmt = "json" if "application/json" in accept else "prometheus"
        if fmt not in ("prometheus", "json"):
            raise ValueError(
                f"unknown metrics format {fmt!r}: use 'prometheus' or 'json'"
            )
        rendered = self.server_api.service.metrics(format=fmt)
        if fmt == "json":
            body = (json.dumps(rendered, sort_keys=True) + "\n").encode("utf-8")
            return 200, body, "application/json"
        return 200, rendered.encode("utf-8"), "text/plain; version=0.0.4"

    def _admin_shutdown(self) -> Tuple[int, bytes, str]:
        api = self.server_api
        token = self._bearer_token()
        if token is None:
            raise Unauthorized(
                "missing bearer token: send 'Authorization: Bearer <token>'"
            )
        if api.admin_token is None or token != api.admin_token:
            raise ServiceApiError(
                403, "forbidden", "shutdown requires the admin token"
            )
        api.request_shutdown()
        return self._json(200, {"shutting_down": True})


class ServiceApiError(ServiceError):
    """An HTTP-layer fault (bad route/method/admin) with its own code —
    constructed per-raise rather than one class per routing mishap."""

    def __init__(self, http_status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.http_status = http_status
        self.code = code
