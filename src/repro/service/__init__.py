"""The multi-tenant training service (the serving layer over the engine).

The paper runs private SGD *inside* the data platform; this package is
the subsystem that makes the platform a long-lived, multi-tenant server:
jobs arrive from many principals, a shared-scan scheduler fuses
compatible jobs into single table scans (cross-tenant amortization of
PR 2's K-models-one-scan engine), and a two-phase privacy-budget ledger
guarantees that no tenant can exceed their per-dataset (ε, δ) allowance
— over-budget jobs are rejected before touching data, failed jobs refund
their reservation, and only released models commit a spend.

Since PR 4 the service is a *continuously-running* server: a background
:class:`~repro.service.worker.DispatchLoop` trains the queue on worker
threads (``submit()`` returns a job handle immediately; tenants block on
``record.wait()``), a cross-drain result cache serves resubmitted
identical jobs with 0 pages and 0 ε, and the registry + account caps
snapshot to disk so a restarted service resumes with prior records and
budgets reconciled from committed receipts. Since PR 7 the snapshot is
crash-safe: a checksummed append-only receipt log
(:mod:`repro.service.wal`) makes the per-window autosave O(1), survives
kill -9 mid-window (torn tail truncated, committed receipts replayed),
and refuses to load tampered history (fail-closed).

Entry point: :class:`TrainingService` (see :mod:`repro.service.server`).
"""

from repro.service.errors import (
    BudgetRejected,
    InvalidCandidate,
    NotCancellable,
    ServiceError,
    UnknownJob,
    UnknownTable,
)
from repro.service.jobs import JobQueue, JobStatus, TrainingJob
from repro.service.ledger import (
    AccountStatement,
    BudgetDenied,
    BudgetReceipt,
    BudgetReservation,
    PrivacyBudgetLedger,
)
from repro.service.registry import (
    CachedResult,
    JobRecord,
    ModelRegistry,
    ResultCache,
)
from repro.service.scheduler import SharedScanScheduler, table_fingerprint
from repro.service.server import TrainingService
from repro.service.wal import WalCorruption, WriteAheadLog
from repro.service.worker import DispatchLoop

__all__ = [
    "TrainingService",
    "TrainingJob",
    "JobQueue",
    "JobStatus",
    "JobRecord",
    "ModelRegistry",
    "ResultCache",
    "CachedResult",
    "SharedScanScheduler",
    "DispatchLoop",
    "PrivacyBudgetLedger",
    "BudgetDenied",
    "BudgetReceipt",
    "BudgetReservation",
    "AccountStatement",
    "WriteAheadLog",
    "WalCorruption",
    "table_fingerprint",
    "ServiceError",
    "UnknownJob",
    "UnknownTable",
    "InvalidCandidate",
    "NotCancellable",
    "BudgetRejected",
]
