"""End-to-end integration tests reproducing the paper's headline findings
at small scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import linearly_separable_binary, protein_like
from repro.evaluation.harness import accuracy_sweep
from repro.evaluation.scenarios import Scenario, TrainSettings
from repro.optim.losses import LogisticLoss
from repro.rdbms.bismarck import BismarckSession


@pytest.fixture(scope="module")
def protein_small():
    # ~7k train examples: large enough for the privacy noise to be
    # survivable at moderate epsilon, small enough for CI.
    return protein_like(scale=0.1, seed=0)


class TestHeadlineAccuracyOrdering:
    """Section 4.5: ours yields substantially better accuracy than SCS13
    and BST14 under the same guarantees, approaching noiseless."""

    def test_strongly_convex_approx_dp(self, protein_small):
        pair = protein_small
        scenario = Scenario.STRONGLY_CONVEX_APPROX
        sweep = accuracy_sweep(
            pair.train, pair.test, scenario, [0.2, 0.4],
            settings=TrainSettings(scenario, epsilon=1.0, passes=5,
                                   batch_size=50, regularization=1e-3),
            repeats=2, random_state=0,
        )
        for i in range(2):
            assert sweep.series["ours"][i] >= sweep.series["scs13"][i]
            assert sweep.series["ours"][i] >= sweep.series["bst14"][i]
        # At the largest epsilon ours is close to noiseless.
        assert sweep.series["ours"][-1] >= sweep.series["noiseless"][-1] - 0.05

    def test_convex_pure_dp(self, protein_small):
        pair = protein_small
        scenario = Scenario.CONVEX_PURE
        sweep = accuracy_sweep(
            pair.train, pair.test, scenario, [0.5, 2.0],
            settings=TrainSettings(scenario, epsilon=1.0, passes=5,
                                   batch_size=50),
            repeats=2, random_state=0,
        )
        for i in range(2):
            assert sweep.series["ours"][i] >= sweep.series["scs13"][i] - 0.02


class TestPassesEffect:
    """Section 4.5 / Figure 4: passes hurt in the convex case (noise grows
    with k) and help in the strongly convex case (noise is k-oblivious)."""

    def test_convex_more_passes_more_noise(self):
        pair = linearly_separable_binary("d", 4000, 2000, 10,
                                         margin_noise=0.15, random_state=1)
        eps = 0.5

        def mean_acc(passes):
            accs = []
            for seed in range(4):
                from repro.core.bolton import private_convex_psgd

                result = private_convex_psgd(
                    pair.train.features, pair.train.labels, LogisticLoss(),
                    epsilon=eps, passes=passes, batch_size=1, random_state=seed,
                )
                accs.append(result.accuracy(pair.test.features, pair.test.labels))
            return float(np.mean(accs))

        assert mean_acc(1) > mean_acc(20) - 0.02
        # and the noise magnitude itself grows linearly in k:
        from repro.core.bolton import private_convex_psgd

        s1 = private_convex_psgd(
            pair.train.features, pair.train.labels, LogisticLoss(),
            epsilon=eps, passes=1, batch_size=1, random_state=0,
        ).sensitivity.value
        s20 = private_convex_psgd(
            pair.train.features, pair.train.labels, LogisticLoss(),
            epsilon=eps, passes=20, batch_size=1, random_state=0,
        ).sensitivity.value
        assert s20 == pytest.approx(20 * s1)

    def test_strongly_convex_more_passes_no_extra_noise(self):
        pair = linearly_separable_binary("d", 4000, 2000, 10,
                                         margin_noise=0.15, random_state=2)
        from repro.core.bolton import private_strongly_convex_psgd

        loss = LogisticLoss(regularization=0.01)
        s1 = private_strongly_convex_psgd(
            pair.train.features, pair.train.labels, loss, epsilon=0.5,
            passes=1, batch_size=50, random_state=0,
        )
        s10 = private_strongly_convex_psgd(
            pair.train.features, pair.train.labels, loss, epsilon=0.5,
            passes=10, batch_size=50, random_state=0,
        )
        assert s1.sensitivity.value == pytest.approx(s10.sensitivity.value)
        # more passes converge at least as well on average
        accs1 = []
        accs10 = []
        for seed in range(4):
            accs1.append(
                private_strongly_convex_psgd(
                    pair.train.features, pair.train.labels, loss, epsilon=0.5,
                    passes=1, batch_size=50, random_state=seed,
                ).accuracy(pair.test.features, pair.test.labels)
            )
            accs10.append(
                private_strongly_convex_psgd(
                    pair.train.features, pair.train.labels, loss, epsilon=0.5,
                    passes=10, batch_size=50, random_state=seed,
                ).accuracy(pair.test.features, pair.test.labels)
            )
        assert np.mean(accs10) >= np.mean(accs1) - 0.03


class TestBatchSizeEffect:
    """Figure 4(c): enlarging the mini-batch drastically reduces noise."""

    def test_batch_10_beats_batch_1_convex_20_passes(self):
        pair = linearly_separable_binary("d", 4000, 2000, 10,
                                         margin_noise=0.15, random_state=3)
        from repro.core.bolton import private_convex_psgd

        def mean_acc(batch):
            accs = []
            for seed in range(4):
                result = private_convex_psgd(
                    pair.train.features, pair.train.labels, LogisticLoss(),
                    epsilon=0.5, passes=20, batch_size=batch, random_state=seed,
                )
                accs.append(result.accuracy(pair.test.features, pair.test.labels))
            return float(np.mean(accs))

        assert mean_acc(10) > mean_acc(1) + 0.05


class TestLargeDatasetPrivacyForFree:
    """Appendix C: at HIGGS-like scale the bolt-on noise is negligible."""

    def test_large_m_matches_noiseless(self):
        pair = linearly_separable_binary("big", 50_000, 5_000, 10,
                                         margin_noise=0.3, random_state=4)
        from repro.core.bolton import (
            noiseless_psgd,
            private_strongly_convex_psgd,
        )

        loss = LogisticLoss(regularization=1e-3)
        private = private_strongly_convex_psgd(
            pair.train.features, pair.train.labels, loss, epsilon=0.05,
            delta=1.0 / pair.train.size**2, passes=2, batch_size=50,
            random_state=0,
        )
        private_acc = private.accuracy(pair.test.features, pair.test.labels)
        noiseless_acc = private.noiseless_accuracy(
            pair.test.features, pair.test.labels
        )
        assert private_acc >= noiseless_acc - 0.02


class TestInRDBMSEndToEnd:
    """The Bismarck path and the library path agree."""

    def test_bismarck_noiseless_matches_library(self, protein_small):
        pair = protein_small
        sub = pair.train
        session = BismarckSession(buffer_pool_pages=1 << 18)
        session.load_table("t", sub.features, sub.labels)
        from repro.optim.schedules import ConstantSchedule

        eta = 1.0 / np.sqrt(sub.size)
        report = session.run_noiseless(
            "t", LogisticLoss(), ConstantSchedule(eta), epochs=2, batch_size=50,
            random_state=0,
        )
        in_db_acc = float(
            np.mean(np.where(pair.test.features @ report.model >= 0, 1, -1)
                    == pair.test.labels)
        )
        from repro.core.bolton import noiseless_psgd

        lib = noiseless_psgd(
            sub.features, sub.labels, LogisticLoss(), ConstantSchedule(eta),
            passes=2, batch_size=50, random_state=0,
        )
        lib_acc = float(
            np.mean(np.where(pair.test.features @ lib.model >= 0, 1, -1)
                    == pair.test.labels)
        )
        assert abs(in_db_acc - lib_acc) < 0.03

    def test_bolton_in_rdbms_is_private_and_accurate(self, protein_small):
        pair = protein_small
        session = BismarckSession(buffer_pool_pages=1 << 18)
        session.load_table("t", pair.train.features, pair.train.labels)
        lam = 1e-3
        report = session.run_bolton_private(
            "t", LogisticLoss(regularization=lam), epsilon=0.5,
            delta=1.0 / pair.train.size**2, epochs=5, batch_size=50,
            radius=1 / lam, random_state=0,
        )
        accuracy = float(
            np.mean(np.where(pair.test.features @ report.model >= 0, 1, -1)
                    == pair.test.labels)
        )
        assert accuracy > 0.8
