"""SGD substrate: losses, update operators, schedules, projections, PSGD.

This package is the non-private optimization layer the paper treats as a
black box. :mod:`repro.core` builds the bolt-on private algorithms on top
of it; :mod:`repro.baselines` builds the white-box competitors by using its
noise/sampling hooks.
"""

from repro.optim.growth import (
    averaged_divergence_bound,
    divergence_bound,
    worst_case_divergence_bound,
)
from repro.optim.losses import (
    HingeLoss,
    HuberSVMLoss,
    LeastSquaresLoss,
    LogisticLoss,
    Loss,
    LossProperties,
    MarginLoss,
    fusion_groups,
)
from repro.optim.operators import (
    BatchGradientUpdate,
    GradientUpdate,
    OperatorBounds,
    boundedness_bound,
    empirical_boundedness,
    empirical_expansiveness,
    expansiveness_bound,
    operator_bounds,
)
from repro.optim.projection import (
    BoxProjection,
    IdentityProjection,
    L2BallProjection,
    Projection,
    rows_projector,
)
from repro.optim.psgd import (
    PSGD,
    ModelSpec,
    MultiModelPSGD,
    MultiModelResult,
    PSGDConfig,
    PSGDResult,
    minibatch_slices,
    run_psgd,
    scan_compatibility_key,
)
from repro.optim.variance_reduced import SAG, SVRG, VarianceReducedResult
from repro.optim.schedules import (
    BST14Schedule,
    CappedInverseTSchedule,
    ConstantSchedule,
    DecreasingSchedule,
    InverseSqrtTSchedule,
    InverseTSchedule,
    SquareRootSchedule,
    StepSizeSchedule,
    validate_convex_step_size,
    validate_strongly_convex_step_size,
)

__all__ = [
    "Loss",
    "MarginLoss",
    "LossProperties",
    "LogisticLoss",
    "HuberSVMLoss",
    "LeastSquaresLoss",
    "HingeLoss",
    "GradientUpdate",
    "BatchGradientUpdate",
    "OperatorBounds",
    "expansiveness_bound",
    "boundedness_bound",
    "operator_bounds",
    "empirical_expansiveness",
    "empirical_boundedness",
    "Projection",
    "IdentityProjection",
    "L2BallProjection",
    "BoxProjection",
    "StepSizeSchedule",
    "ConstantSchedule",
    "InverseTSchedule",
    "CappedInverseTSchedule",
    "InverseSqrtTSchedule",
    "DecreasingSchedule",
    "SquareRootSchedule",
    "BST14Schedule",
    "validate_convex_step_size",
    "validate_strongly_convex_step_size",
    "PSGD",
    "PSGDConfig",
    "PSGDResult",
    "ModelSpec",
    "MultiModelPSGD",
    "MultiModelResult",
    "fusion_groups",
    "rows_projector",
    "SVRG",
    "SAG",
    "VarianceReducedResult",
    "run_psgd",
    "minibatch_slices",
    "scan_compatibility_key",
    "divergence_bound",
    "worst_case_divergence_bound",
    "averaged_divergence_bound",
]
