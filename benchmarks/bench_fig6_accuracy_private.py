"""Figure 6 — test accuracy vs ε with private tuning (Algorithm 3).

Same three dataset rows and four panels as Figure 3, but every private
point selects its hyper-parameters via the exponential-mechanism tuner
over the paper's grid (k ∈ {5, 10}, λ ∈ {1e-4, 1e-3, 1e-2} where
applicable). Reduced ε grids keep the bench fast.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.figures import accuracy_figure_row
from repro.evaluation.reporting import format_series
from repro.evaluation.scenarios import Scenario
from repro.tuning.grid import paper_grid

from bench_util import run_once, write_report

#: Every second point of the paper's grids.
MNIST_EPS = (0.5, 2.0, 4.0)
BINARY_EPS = (0.05, 0.2, 0.4)
#: Reduced tuning grid (4 candidates -> 5 data slices) so each Algorithm-3
#: candidate trains on a usable share of the scaled-down stand-ins.
GRID = paper_grid(regularization=(0.001, 0.01))


def _row(dataset, scale, epsilons):
    return accuracy_figure_row(
        dataset,
        tuning="private",
        scale=scale,
        scenarios=tuple(Scenario),
        epsilons=epsilons,
        passes=10,
        batch_size=50,
        grid=GRID,
        seed=0,
    )


def _check_and_write(name, dataset, results):
    blocks = [
        format_series(
            f"Figure 6 [{dataset}] {sweep.scenario.value} (private tuning)",
            "epsilon", sweep.epsilons, sweep.series,
        )
        for sweep in results
    ]
    write_report(name, "\n\n".join(blocks))
    for sweep in results:
        assert sweep.tuning_mode == "private"
        ours = float(np.mean(sweep.series["ours"]))
        scs = float(np.mean(sweep.series["scs13"]))
        assert ours >= scs - 0.05, f"{sweep.scenario.name}: ours {ours} scs {scs}"


def bench_fig6_mnist(benchmark):
    results = run_once(benchmark, _row, "mnist", 0.12, MNIST_EPS)
    _check_and_write("fig6_mnist", "mnist-like", results)


def bench_fig6_protein(benchmark):
    results = run_once(benchmark, _row, "protein", 0.1, BINARY_EPS)
    _check_and_write("fig6_protein", "protein-like", results)


def bench_fig6_covertype(benchmark):
    results = run_once(benchmark, _row, "covertype", 0.04, BINARY_EPS)
    _check_and_write("fig6_covertype", "covertype-like", results)
