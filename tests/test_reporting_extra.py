"""Additional coverage for reporting and misc utility edges."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.reporting import format_series, format_table, series_summary
from repro.utils.rng import spawn_generators


class TestFormatTableEdges:
    def test_mixed_types(self):
        rows = [{"name": "a", "count": 3, "rate": 0.12345, "flag": True}]
        text = format_table(rows)
        assert "0.1235" in text  # floats get 4 decimals
        assert "3" in text
        assert "True" in text

    def test_missing_cells_blank(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        text = format_table(rows)
        assert text.count("\n") == 3  # header + rule + 2 rows

    def test_explicit_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_wide_values_align(self):
        rows = [{"x": "short"}, {"x": "a-much-longer-value"}]
        lines = format_table(rows).splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines padded to equal width


class TestFormatSeriesEdges:
    def test_multiple_series_columns(self):
        text = format_series(
            "t", "x", [1.0, 2.0], {"a": [0.1, 0.2], "b": [0.3, 0.4]}
        )
        header = text.splitlines()[1]
        assert "a" in header and "b" in header

    def test_series_summary_empty_series_rejected(self):
        with pytest.raises(ZeroDivisionError):
            series_summary({"a": []})


class TestSpawnFromGenerator:
    def test_children_from_generator_are_reproducible_from_state(self):
        parent_a = np.random.default_rng(1)
        parent_b = np.random.default_rng(1)
        kids_a = spawn_generators(parent_a, 3)
        kids_b = spawn_generators(parent_b, 3)
        for ka, kb in zip(kids_a, kids_b):
            np.testing.assert_array_equal(ka.random(4), kb.random(4))

    def test_zero_children(self):
        assert spawn_generators(0, 0) == []
