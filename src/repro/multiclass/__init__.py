"""One-vs-rest multiclass private training (the paper's MNIST setup)."""

from repro.multiclass.ovr import BinaryTrainer, OneVsRestResult, train_one_vs_rest

__all__ = ["OneVsRestResult", "BinaryTrainer", "train_one_vs_rest"]
