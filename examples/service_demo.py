#!/usr/bin/env python
"""The training service: 50 mixed-tenant jobs, shared scans, hard budgets.

The walkthrough the ROADMAP's service-layer section narrates:

1. two tables are registered with the service ("ratings" and "clicks");
2. four tenants get per-(principal, table) privacy budgets — mallory's
   is deliberately too small for her appetite;
3. 50 jobs are submitted: a mix of logistic/Huber losses, regularization
   strengths, priorities and seeds, plus one *unreleasable* job (a
   non-smooth hinge loss) and a tail of over-budget ones;
4. one ``drain()`` runs everything: compatible jobs fuse into shared
   scans (pages charged once per group), the unfusable stragglers run
   sequentially, the hinge job fails with its reservation refunded, and
   mallory's over-budget jobs are rejected having never touched a page.

Every completed job's released weights are bitwise-identical to what the
job would have produced running alone — fusion is invisible to tenants
everywhere except the page counters and the clock.

Run:  python examples/service_demo.py
"""

from __future__ import annotations

from repro.data.synthetic import linearly_separable_binary
from repro.optim.losses import HingeLoss, HuberSVMLoss, LogisticLoss
from repro.service import JobStatus, TrainingService

EPS_PER_JOB = 0.05
PASSES, BATCH = 2, 25


def build_service() -> TrainingService:
    service = TrainingService(batching_window=32, chunk_size=128, scan_seed=7)
    ratings = linearly_separable_binary("ratings", 600, 10, 12, random_state=1).train
    clicks = linearly_separable_binary("clicks", 400, 10, 8, random_state=2).train
    service.register_table("ratings", ratings.features, ratings.labels)
    service.register_table("clicks", clicks.features, clicks.labels)

    # Budgets: alice and bob are comfortable, carol is tight, and mallory
    # gets 3 jobs' worth on ratings but will ask for far more.
    service.open_budget("alice", "ratings", 1.0)
    service.open_budget("alice", "clicks", 0.5)
    service.open_budget("bob", "ratings", 1.0)
    service.open_budget("bob", "clicks", 0.5)
    service.open_budget("carol", "ratings", 6 * EPS_PER_JOB)
    service.open_budget("mallory", "ratings", 3 * EPS_PER_JOB)
    return service


def submit_workload(service: TrainingService) -> None:
    lambdas = [1e-4, 1e-3, 1e-2]
    # 1-20: alice & bob on ratings — all fusion-compatible (same
    # batch/passes), heterogeneous losses and regularization.
    for j in range(20):
        principal = "alice" if j % 2 == 0 else "bob"
        loss = (
            LogisticLoss(regularization=lambdas[j % 3])
            if j % 4 != 3
            else HuberSVMLoss(0.1, regularization=lambdas[j % 3])
        )
        service.submit(principal, "ratings", loss, epsilon=EPS_PER_JOB,
                       passes=PASSES, batch_size=BATCH, seed=100 + j)
    # 21-32: the clicks table — a second fused group, higher priority.
    for j in range(12):
        principal = "alice" if j % 2 == 0 else "bob"
        service.submit(principal, "clicks", LogisticLoss(regularization=lambdas[j % 3]),
                       epsilon=EPS_PER_JOB, passes=PASSES, batch_size=BATCH,
                       priority=1, seed=200 + j)
    # 33-38: carol's ratings jobs with a *different* batch size — not
    # scan-compatible with the alice/bob group, so they fuse among
    # themselves (their own group).
    for j in range(6):
        service.submit("carol", "ratings", LogisticLoss(regularization=lambdas[j % 3]),
                       epsilon=EPS_PER_JOB, passes=PASSES, batch_size=40, seed=300 + j)
    # 39: a lone odd job — nothing shares its (passes=3) signature, so it
    # takes the sequential fallback.
    service.submit("alice", "ratings", LogisticLoss(regularization=1e-3),
                   epsilon=EPS_PER_JOB, passes=3, batch_size=BATCH, seed=400)
    # 40: bob asks for a non-smooth hinge loss — trainable, but not
    # privately releasable; the job FAILS before any scan and his
    # reservation is refunded.
    service.submit("bob", "ratings", HingeLoss(), epsilon=EPS_PER_JOB,
                   passes=PASSES, batch_size=BATCH, seed=401)
    # 41-50: mallory hammers ratings; only her first 3 fit her budget,
    # the other 7 are REJECTED at admission — zero pages, zero epsilon.
    for j in range(10):
        service.submit("mallory", "ratings", LogisticLoss(regularization=1e-3),
                       epsilon=EPS_PER_JOB, passes=PASSES, batch_size=BATCH,
                       seed=500 + j)


def main() -> None:
    service = build_service()
    submit_workload(service)
    assert len(service.registry) == 50

    pages_before = service.page_reads
    finished = service.drain()
    pages = service.page_reads - pages_before

    counts = service.registry.counts()
    print("== 50 mixed-tenant jobs, one drain ==")
    print("statuses :", ", ".join(f"{k}={v}" for k, v in sorted(counts.items()) if v))
    print(f"groups   : {len(service.scheduler.dispatch_log)} scans for "
          f"{counts['completed']} completed jobs")
    for key, job_ids, group_pages in service.scheduler.dispatch_log:
        table, batch, passes, _ = key
        print(f"  scan on {table:>7} (b={batch:>2}, k={passes}): "
              f"{len(job_ids):>2} jobs, {group_pages} page requests")
    print(f"pages    : {pages} total — one job alone on ratings costs "
          f"{PASSES * 600}, on clicks {PASSES * 400}")

    print("\n== budgets after the drain ==")
    for statement in service.budgets():
        print(f"  {statement.principal:>8} on {statement.table:>7}: "
              f"spent ({statement.spent[0]:.2f}, {statement.spent[1]:g}) "
              f"of cap {statement.cap.epsilon:.2f}, "
              f"available eps {statement.available_epsilon:.2f}")

    failed = service.jobs(status=JobStatus.FAILED)
    rejected = service.jobs(status=JobStatus.REJECTED)
    print(f"\nfailed   : {[record.job_id for record in failed]} "
          f"(budget refunded — bob spent nothing on it)")
    print(f"rejected : {len(rejected)} of mallory's jobs "
          f"(admission control; they charged 0 pages)")

    # The fusion-invisibility guarantee, demonstrated on one job: replay
    # job-00001 alone on a fresh service and compare weights bitwise.
    import numpy as np

    replay = build_service()
    record = replay.submit("alice", "ratings",
                           LogisticLoss(regularization=1e-4),
                           epsilon=EPS_PER_JOB, passes=PASSES,
                           batch_size=BATCH, seed=100)
    replay.drain()
    same = np.array_equal(replay.model(record.job_id),
                          service.model("job-00001"))
    print(f"\nreplay   : job-00001 alone == fused weights bitwise: {same}")
    assert same
    assert len(finished) == counts["completed"] + counts["failed"]


if __name__ == "__main__":
    main()
