"""Table 3 — the dataset inventory.

Regenerates the table from the registry (paper values verbatim) and times
the synthetic stand-in generation at the bench scale, asserting that each
stand-in matches the paper's dimensionality and class structure.
"""

from __future__ import annotations

from repro.data.registry import REGISTRY, load, table3_rows
from repro.evaluation.reporting import format_table

from bench_util import run_once, write_report


def bench_table3_rows(benchmark):
    rows = run_once(benchmark, table3_rows)
    write_report("table3_datasets", format_table(rows))
    by_name = {r["dataset"]: r for r in rows}
    assert by_name["MNIST"]["train_size"] == 60000
    assert by_name["MNIST"]["dimensions"] == "784 (50)"
    assert by_name["Protein"]["train_size"] == 72876
    assert by_name["Forest"]["train_size"] == 498010


def _generate_all():
    pairs = {}
    for key, spec in REGISTRY.items():
        pairs[key] = load(key, scale=0.01, seed=0)
    return pairs


def bench_table3_standin_generation(benchmark):
    pairs = run_once(benchmark, _generate_all)
    lines = []
    for key, pair in pairs.items():
        spec = REGISTRY[key]
        lines.append(
            f"{spec.name}: generated m={pair.train.size} (paper "
            f"{spec.paper_train_size}), d={pair.train.dimension} "
            f"(paper {spec.paper_dimension}), classes={pair.train.num_classes}"
        )
        assert pair.train.dimension == spec.paper_dimension
        assert pair.train.num_classes == spec.num_classes
    write_report("table3_standins", "\n".join(lines))
