"""Tests for the SVRG/SAG substrate (the non-adaptive variants the paper
name-checks in Section 3.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim.losses import LogisticLoss
from repro.optim.projection import L2BallProjection
from repro.optim.variance_reduced import SAG, SVRG
from tests.conftest import make_binary_data


@pytest.fixture(scope="module")
def data():
    X_all, y_all = make_binary_data(800, 6, seed=20)
    return X_all[:600], y_all[:600], X_all[600:], y_all[600:]


class TestSVRG:
    def test_learns(self, data):
        X, y, Xt, yt = data
        result = SVRG(LogisticLoss(), eta=0.3, epochs=4).run(X, y, random_state=0)
        accuracy = float(np.mean(LogisticLoss().predict(result.model, Xt) == yt))
        assert accuracy > 0.9

    def test_loss_decreases_across_epochs(self, data):
        X, y, _, _ = data
        result = SVRG(
            LogisticLoss(regularization=0.01), eta=0.2, epochs=5, track_loss=True,
        ).run(X, y, random_state=0)
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_variance_reduction_beats_plain_sgd_at_same_budget(self, data):
        """SVRG's raison d'etre: with a constant step size it keeps
        improving where plain constant-step SGD stalls at a noise floor."""
        from repro.optim.psgd import run_psgd
        from repro.optim.schedules import ConstantSchedule

        X, y, _, _ = data
        loss = LogisticLoss(regularization=0.01)
        svrg = SVRG(loss, eta=0.3, epochs=8, track_loss=True).run(
            X, y, random_state=1
        )
        sgd = run_psgd(
            loss, X, y, ConstantSchedule(0.3), passes=8, random_state=1
        )
        svrg_loss = loss.batch_value(svrg.model, X, y)
        sgd_loss = loss.batch_value(sgd.model, X, y)
        assert svrg_loss <= sgd_loss + 1e-6

    def test_deterministic_given_seed(self, data):
        X, y, _, _ = data
        a = SVRG(LogisticLoss(), eta=0.1, epochs=2).run(X, y, random_state=5)
        b = SVRG(LogisticLoss(), eta=0.1, epochs=2).run(X, y, random_state=5)
        np.testing.assert_array_equal(a.model, b.model)

    def test_non_adaptive_replay(self, data):
        """Lemma 5's precondition: with the randomness fixed, the index
        stream is identical on neighbouring datasets."""
        X, y, _, _ = data
        indices = np.random.default_rng(3).integers(0, X.shape[0], size=2 * 600)
        a = SVRG(LogisticLoss(), eta=0.1, epochs=2).run(X, y, indices=indices)
        X2 = X.copy()
        X2[17] = -X2[17]
        b = SVRG(LogisticLoss(), eta=0.1, epochs=2).run(X2, y, indices=indices)
        # Models differ (data changed) but the run is well-defined and the
        # divergence is bounded — crucially no exception, same length.
        assert a.updates == b.updates
        assert not np.array_equal(a.model, b.model)

    def test_projection_respected(self, data):
        X, y, _, _ = data
        result = SVRG(
            LogisticLoss(), eta=0.5, epochs=2,
            projection=L2BallProjection(0.05),
        ).run(X, y, random_state=0)
        assert np.linalg.norm(result.model) <= 0.05 + 1e-9

    def test_bad_indices_rejected(self, data):
        X, y, _, _ = data
        with pytest.raises(ValueError, match="length"):
            SVRG(LogisticLoss(), eta=0.1, epochs=1).run(X, y, indices=[0, 1])
        with pytest.raises(ValueError, match="out of range"):
            SVRG(LogisticLoss(), eta=0.1, epochs=1, updates_per_epoch=2).run(
                X, y, indices=[0, 10**6]
            )

    def test_sensitivity_refused_for_svrg(self):
        """The library must not calibrate noise for optimizers without a
        proven bound (Section 6 leaves SVRG sensitivity open)."""
        from repro.core.sensitivity import sensitivity_for_schedule
        from repro.optim.schedules import InverseSqrtTSchedule

        with pytest.raises(TypeError):
            sensitivity_for_schedule(
                LogisticLoss().properties(), InverseSqrtTSchedule(), 100, 1
            )


class TestSAG:
    def test_learns(self, data):
        X, y, Xt, yt = data
        result = SAG(LogisticLoss(), eta=1.0, epochs=6).run(X, y, random_state=0)
        accuracy = float(np.mean(LogisticLoss().predict(result.model, Xt) == yt))
        assert accuracy > 0.9

    def test_loss_decreases(self, data):
        X, y, _, _ = data
        result = SAG(
            LogisticLoss(regularization=0.01), eta=1.0, epochs=5, track_loss=True,
        ).run(X, y, random_state=0)
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_deterministic_given_seed(self, data):
        X, y, _, _ = data
        a = SAG(LogisticLoss(), eta=0.5, epochs=2).run(X, y, random_state=5)
        b = SAG(LogisticLoss(), eta=0.5, epochs=2).run(X, y, random_state=5)
        np.testing.assert_array_equal(a.model, b.model)

    def test_replayable_indices(self, data):
        X, y, _, _ = data
        indices = np.random.default_rng(4).integers(0, 600, size=600)
        a = SAG(LogisticLoss(), eta=0.5, epochs=1).run(X, y, indices=indices)
        b = SAG(LogisticLoss(), eta=0.5, epochs=1).run(X, y, indices=indices)
        np.testing.assert_array_equal(a.model, b.model)

    def test_update_count(self, data):
        X, y, _, _ = data
        result = SAG(LogisticLoss(), eta=0.5, epochs=3).run(X, y, random_state=0)
        assert result.updates == 3 * 600
