"""Figure 1 / Section 4.2 — integration effort and architecture.

Quantifies the bolt-on vs white-box integration contrast on our substrate
(the stand-in for "~10 LOC of Python" vs "dozens of LOC of C in the UDA
transition function"), and times the two noise-injection styles directly:
one draw at the end vs one draw per mini-batch.
"""

from __future__ import annotations

import numpy as np

from repro.core.mechanisms import PrivacyParameters, SphericalLaplaceMechanism
from repro.evaluation.figures import figure1_integration
from repro.evaluation.reporting import format_table

from bench_util import run_once, write_report


def bench_fig1_integration_surface(benchmark):
    fig = run_once(benchmark, figure1_integration)
    meta = fig["meta"]
    write_report(
        "fig1_integration",
        format_table(
            [
                {
                    "style": "bolt-on (ours)",
                    "integration_loc": meta["bolton_integration_loc"],
                    "touches_engine": meta["bolton_touches_engine_internals"],
                },
                {
                    "style": "white-box (SCS13/BST14)",
                    "integration_loc": meta["whitebox_integration_loc"],
                    "touches_engine": meta["whitebox_touches_engine_internals"],
                },
            ]
        )
        + f"\npaper claim: {meta['paper_claim']}",
    )
    assert meta["bolton_integration_loc"] <= 15
    assert meta["whitebox_integration_loc"] > 3 * meta["bolton_integration_loc"]


def bench_fig1_single_draw_cost(benchmark):
    """The entire runtime cost the bolt-on approach adds: one noise draw."""
    mech = SphericalLaplaceMechanism()
    privacy = PrivacyParameters(0.1)
    rng = np.random.default_rng(0)

    result = benchmark(lambda: mech.sample(50, 0.01, privacy, rng))
    assert result.shape == (50,)


def bench_fig1_per_batch_draw_cost(benchmark):
    """What SCS13/BST14 pay per mini-batch, i.e. m/b times per epoch."""
    rng = np.random.default_rng(0)

    def per_epoch_draws():
        return [rng.normal(0.0, 1.0, size=50) for _ in range(1000)]

    draws = benchmark(per_epoch_draws)
    assert len(draws) == 1000
