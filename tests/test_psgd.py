"""Tests for the PSGD engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim.losses import LogisticLoss
from repro.optim.projection import L2BallProjection
from repro.optim.psgd import PSGD, PSGDConfig, minibatch_slices, run_psgd
from repro.optim.schedules import ConstantSchedule, InverseTSchedule


class TestMinibatchSlices:
    def test_even_split(self):
        slices = minibatch_slices(10, 5)
        assert slices == [slice(0, 5), slice(5, 10)]

    def test_ragged_tail(self):
        slices = minibatch_slices(10, 4)
        assert slices == [slice(0, 4), slice(4, 8), slice(8, 10)]

    def test_batch_larger_than_m(self):
        assert minibatch_slices(3, 10) == [slice(0, 3)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            minibatch_slices(0, 1)


class TestPSGDBasics:
    def test_deterministic_given_seed(self, medium_data):
        X, y = medium_data
        a = run_psgd(LogisticLoss(), X, y, ConstantSchedule(0.1), passes=2, random_state=42)
        b = run_psgd(LogisticLoss(), X, y, ConstantSchedule(0.1), passes=2, random_state=42)
        np.testing.assert_array_equal(a.model, b.model)

    def test_different_seeds_differ(self, medium_data):
        X, y = medium_data
        a = run_psgd(LogisticLoss(), X, y, ConstantSchedule(0.1), passes=1, random_state=1)
        b = run_psgd(LogisticLoss(), X, y, ConstantSchedule(0.1), passes=1, random_state=2)
        assert not np.array_equal(a.model, b.model)

    def test_learns_separable_data(self, medium_data):
        X, y = medium_data
        result = run_psgd(
            LogisticLoss(), X, y, ConstantSchedule(0.5), passes=10, batch_size=10,
            random_state=0,
        )
        accuracy = float(np.mean(LogisticLoss().predict(result.model, X) == y))
        assert accuracy > 0.9

    def test_update_count(self, small_data):
        X, y = small_data  # 60 examples
        result = run_psgd(
            LogisticLoss(), X, y, ConstantSchedule(0.1), passes=3, batch_size=7,
            random_state=0,
        )
        assert result.updates == 3 * int(np.ceil(60 / 7))
        assert result.passes_completed == 3

    def test_fixed_permutation_is_replayable(self, small_data):
        X, y = small_data
        perm = list(reversed(range(60)))
        a = run_psgd(
            LogisticLoss(), X, y, ConstantSchedule(0.1), passes=2,
            permutation=perm, random_state=1,
        )
        b = run_psgd(
            LogisticLoss(), X, y, ConstantSchedule(0.1), passes=2,
            permutation=perm, random_state=999,
        )
        np.testing.assert_array_equal(a.model, b.model)

    def test_bad_permutation_rejected(self, small_data):
        X, y = small_data
        with pytest.raises(ValueError, match="permutation"):
            run_psgd(
                LogisticLoss(), X, y, ConstantSchedule(0.1), permutation=[0] * 60
            )

    def test_initial_hypothesis_respected(self, small_data):
        X, y = small_data
        config = PSGDConfig(schedule=ConstantSchedule(1e-12), passes=1)
        start = np.ones(5)
        result = PSGD(LogisticLoss(), config).run(X, y, initial=start, random_state=0)
        np.testing.assert_allclose(result.model, start, atol=1e-9)

    def test_initial_shape_mismatch(self, small_data):
        X, y = small_data
        config = PSGDConfig(schedule=ConstantSchedule(0.1))
        with pytest.raises(ValueError, match="shape"):
            PSGD(LogisticLoss(), config).run(X, y, initial=np.zeros(3))

    def test_projection_keeps_iterates_inside(self, medium_data):
        X, y = medium_data
        radius = 0.05
        config = PSGDConfig(
            schedule=ConstantSchedule(0.5),
            passes=3,
            projection=L2BallProjection(radius),
            record_iterates=True,
        )
        result = PSGD(LogisticLoss(), config).run(X, y, random_state=0)
        for w in result.iterates:
            assert np.linalg.norm(w) <= radius + 1e-9


class TestModelAveraging:
    def test_uniform_average_matches_iterates(self, small_data):
        X, y = small_data
        config = PSGDConfig(
            schedule=ConstantSchedule(0.2), passes=2, average="uniform",
            record_iterates=True,
        )
        result = PSGD(LogisticLoss(), config).run(X, y, random_state=3)
        np.testing.assert_allclose(
            result.model, np.mean(result.iterates, axis=0), atol=1e-12
        )

    def test_suffix_average_uses_tail(self, small_data):
        X, y = small_data
        config = PSGDConfig(
            schedule=ConstantSchedule(0.2), passes=1, average="suffix",
            record_iterates=True,
        )
        result = PSGD(LogisticLoss(), config).run(X, y, random_state=3)
        total = len(result.iterates)
        tail = max(1, int(np.ceil(np.log2(max(2, total)))))
        np.testing.assert_allclose(
            result.model, np.mean(result.iterates[-tail:], axis=0), atol=1e-12
        )

    def test_no_average_returns_final(self, small_data):
        X, y = small_data
        config = PSGDConfig(schedule=ConstantSchedule(0.2), passes=1)
        result = PSGD(LogisticLoss(), config).run(X, y, random_state=3)
        np.testing.assert_array_equal(result.model, result.final_iterate)

    def test_invalid_average_mode(self):
        with pytest.raises(ValueError, match="average"):
            PSGDConfig(schedule=ConstantSchedule(0.1), average="median")


class TestEarlyStopping:
    def test_converges_early_on_plateau(self, medium_data):
        X, y = medium_data
        config = PSGDConfig(
            schedule=InverseTSchedule(gamma=1.0),
            passes=50,
            batch_size=10,
            convergence_tolerance=1e-3,
        )
        result = PSGD(LogisticLoss(regularization=0.1), config).run(
            X, y, random_state=0
        )
        assert result.converged_early
        assert result.passes_completed < 50
        assert len(result.pass_losses) == result.passes_completed

    def test_track_loss_without_stopping(self, small_data):
        X, y = small_data
        config = PSGDConfig(schedule=ConstantSchedule(0.1), passes=3, track_loss=True)
        result = PSGD(LogisticLoss(), config).run(X, y, random_state=0)
        assert len(result.pass_losses) == 3
        assert not result.converged_early

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            PSGDConfig(schedule=ConstantSchedule(0.1), convergence_tolerance=0.0)


class TestHooks:
    def test_gradient_noise_hook_called_per_update(self, small_data):
        X, y = small_data
        calls = []

        def noise(t, d, rng):
            calls.append(t)
            return np.zeros(d)

        config = PSGDConfig(schedule=ConstantSchedule(0.1), passes=2, batch_size=10)
        PSGD(LogisticLoss(), config, gradient_noise=noise).run(X, y, random_state=0)
        assert calls == list(range(1, 13))  # 2 passes * 6 batches

    def test_zero_noise_equals_plain_run(self, small_data):
        X, y = small_data
        config = PSGDConfig(schedule=ConstantSchedule(0.1), passes=2)
        plain = PSGD(LogisticLoss(), config).run(X, y, random_state=5)
        noisy = PSGD(
            LogisticLoss(), config, gradient_noise=lambda t, d, rng: np.zeros(d)
        ).run(X, y, random_state=5)
        np.testing.assert_allclose(plain.model, noisy.model)

    def test_example_sampler_overrides_permutation(self, small_data):
        X, y = small_data
        seen = []

        def sampler(t, m, rng):
            seen.append(t)
            return np.array([0])  # always the first example

        config = PSGDConfig(schedule=ConstantSchedule(0.1), passes=1, batch_size=1)
        result = PSGD(LogisticLoss(), config, example_sampler=sampler).run(
            X, y, random_state=0
        )
        assert len(seen) == 60
        # Training on a single repeated example: model parallel to +-x0.
        x0 = X[0] / np.linalg.norm(X[0])
        direction = result.model / np.linalg.norm(result.model)
        assert abs(abs(float(np.dot(direction, x0))) - 1.0) < 1e-9


class TestFreshPermutation:
    def test_fresh_permutation_changes_trajectory(self, medium_data):
        X, y = medium_data
        base = PSGDConfig(schedule=ConstantSchedule(0.3), passes=4)
        fresh = PSGDConfig(
            schedule=ConstantSchedule(0.3), passes=4, fresh_permutation_each_pass=True
        )
        a = PSGD(LogisticLoss(), base).run(X, y, random_state=9)
        b = PSGD(LogisticLoss(), fresh).run(X, y, random_state=9)
        assert not np.array_equal(a.model, b.model)

    def test_single_pass_unaffected(self, small_data):
        X, y = small_data
        base = PSGDConfig(schedule=ConstantSchedule(0.3), passes=1)
        fresh = PSGDConfig(
            schedule=ConstantSchedule(0.3), passes=1, fresh_permutation_each_pass=True
        )
        a = PSGD(LogisticLoss(), base).run(X, y, random_state=9)
        b = PSGD(LogisticLoss(), fresh).run(X, y, random_state=9)
        np.testing.assert_array_equal(a.model, b.model)


class TestValidation:
    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            run_psgd(
                LogisticLoss(), np.zeros((5, 2)), np.zeros(4), ConstantSchedule(0.1)
            )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            run_psgd(
                LogisticLoss(), np.zeros((0, 2)), np.zeros(0), ConstantSchedule(0.1)
            )

    def test_rejects_nonfinite(self):
        X = np.array([[np.nan, 0.0]])
        with pytest.raises(ValueError):
            run_psgd(LogisticLoss(), X, np.array([1.0]), ConstantSchedule(0.1))

    def test_rejects_bad_passes(self):
        with pytest.raises(ValueError):
            PSGDConfig(schedule=ConstantSchedule(0.1), passes=0)
