"""Tests for the step-size schedules (Table 4 and Corollaries 2–3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim.schedules import (
    BST14Schedule,
    CappedInverseTSchedule,
    ConstantSchedule,
    DecreasingSchedule,
    InverseSqrtTSchedule,
    InverseTSchedule,
    SquareRootSchedule,
    validate_convex_step_size,
    validate_strongly_convex_step_size,
)


class TestConstantSchedule:
    def test_rate_is_constant(self):
        schedule = ConstantSchedule(0.05)
        assert schedule.rate(1) == schedule.rate(1000) == 0.05

    def test_for_dataset_matches_paper(self):
        # Table 4: eta = 1/sqrt(m).
        assert ConstantSchedule.for_dataset(10000).eta == pytest.approx(0.01)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            ConstantSchedule(0.0)

    def test_one_based_indexing(self):
        with pytest.raises(ValueError, match="1-based"):
            ConstantSchedule(0.1).rate(0)

    def test_rates_vector(self):
        np.testing.assert_allclose(ConstantSchedule(0.1).rates(3), [0.1, 0.1, 0.1])


class TestInverseTSchedule:
    def test_values(self):
        schedule = InverseTSchedule(gamma=0.5)
        assert schedule.rate(1) == pytest.approx(2.0)
        assert schedule.rate(4) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        rates = InverseTSchedule(0.1).rates(50)
        assert np.all(np.diff(rates) < 0)


class TestCappedInverseTSchedule:
    def test_cap_applies_early(self):
        # min(1/beta, 1/(gamma t)): early iterations capped at 1/beta.
        schedule = CappedInverseTSchedule(beta=2.0, gamma=0.01)
        assert schedule.rate(1) == pytest.approx(0.5)  # 1/beta
        assert schedule.rate(10) == pytest.approx(0.5)
        # After t > beta/gamma = 200 the 1/(gamma t) branch wins.
        assert schedule.rate(400) == pytest.approx(1.0 / (0.01 * 400))

    def test_crossover_point(self):
        beta, gamma = 1.0, 0.1
        schedule = CappedInverseTSchedule(beta, gamma)
        crossover = int(np.ceil(beta / gamma))
        assert schedule.rate(crossover) == pytest.approx(
            min(1 / beta, 1 / (gamma * crossover))
        )

    def test_never_exceeds_one_over_beta(self):
        schedule = CappedInverseTSchedule(beta=4.0, gamma=0.001)
        assert schedule.max_rate(1000) <= 0.25 + 1e-15


class TestInverseSqrtTSchedule:
    def test_values(self):
        schedule = InverseSqrtTSchedule()
        assert schedule.rate(4) == pytest.approx(0.5)

    def test_eta0_scaling(self):
        assert InverseSqrtTSchedule(2.0).rate(1) == pytest.approx(2.0)


class TestDecreasingSchedule:
    def test_formula(self):
        # eta_t = 2 / (beta (t + m^c))
        schedule = DecreasingSchedule(beta=2.0, m=100, c=0.5)
        assert schedule.rate(1) == pytest.approx(2.0 / (2.0 * (1 + 10.0)))

    def test_c_range_enforced(self):
        with pytest.raises(ValueError):
            DecreasingSchedule(beta=1.0, m=100, c=1.0)

    def test_c_zero_allowed(self):
        schedule = DecreasingSchedule(beta=1.0, m=100, c=0.0)
        assert schedule.offset == 1.0


class TestSquareRootSchedule:
    def test_formula(self):
        schedule = SquareRootSchedule(beta=1.0, m=100, c=0.5)
        assert schedule.rate(4) == pytest.approx(2.0 / (np.sqrt(4) + 10.0))

    def test_slower_decay_than_decreasing(self):
        dec = DecreasingSchedule(beta=1.0, m=100, c=0.5)
        sqrt_s = SquareRootSchedule(beta=1.0, m=100, c=0.5)
        assert sqrt_s.rate(100) > dec.rate(100)


class TestBST14Schedule:
    def test_formula(self):
        schedule = BST14Schedule(radius=2.0, gradient_bound=4.0)
        assert schedule.rate(1) == pytest.approx(1.0)
        assert schedule.rate(4) == pytest.approx(0.5)


class TestValidators:
    def test_convex_validator_accepts_legal(self):
        validate_convex_step_size(ConstantSchedule(1.9), beta=1.0, total=10)

    def test_convex_validator_rejects_illegal(self):
        with pytest.raises(ValueError, match="2/beta"):
            validate_convex_step_size(ConstantSchedule(2.1), beta=1.0, total=10)

    def test_strongly_convex_validator(self):
        validate_strongly_convex_step_size(ConstantSchedule(0.9), beta=1.0, total=10)
        with pytest.raises(ValueError, match="1/beta"):
            validate_strongly_convex_step_size(ConstantSchedule(1.1), beta=1.0, total=10)

    def test_capped_schedule_passes_strongly_convex_validator(self):
        schedule = CappedInverseTSchedule(beta=2.0, gamma=0.01)
        validate_strongly_convex_step_size(schedule, beta=2.0, total=500)


class TestRatesExactness:
    """``rates(n)[t-1] == rate(t)`` *exactly* for every schedule subclass.

    The hot loops (PSGD, SGDUDA, the fused multi-model engine) cache the
    ``rates`` vector once per run instead of calling ``rate(t)`` per step;
    the caching is only sound because the vectorized closed forms produce
    bit-identical floats. Covers every concrete subclass in the module —
    a new subclass with a mismatched override fails here.
    """

    SCHEDULES = [
        pytest.param(ConstantSchedule(0.0731), id="constant"),
        pytest.param(InverseTSchedule(gamma=0.137), id="inverse-t"),
        pytest.param(CappedInverseTSchedule(beta=1.7, gamma=0.013), id="capped-inverse-t"),
        pytest.param(InverseSqrtTSchedule(eta0=0.83), id="inverse-sqrt-t"),
        pytest.param(DecreasingSchedule(beta=1.3, m=197, c=0.41), id="decreasing"),
        pytest.param(SquareRootSchedule(beta=0.7, m=511, c=0.77), id="square-root"),
        pytest.param(BST14Schedule(radius=3.1, gradient_bound=17.3), id="bst14"),
    ]

    @pytest.mark.parametrize("schedule", SCHEDULES)
    @pytest.mark.parametrize("total", [0, 1, 7, 255])
    def test_rates_bitwise_equal_scalar_path(self, schedule, total):
        vector = schedule.rates(total)
        assert vector.shape == (total,)
        assert vector.dtype == np.float64
        scalar = np.array([schedule.rate(t) for t in range(1, total + 1)])
        # Exact equality, not allclose: the engines substitute the cached
        # vector for the per-step calls.
        assert np.array_equal(vector, scalar)

    def test_all_subclasses_covered(self):
        from repro.optim.schedules import StepSizeSchedule

        covered = {type(p.values[0]) for p in self.SCHEDULES}
        assert set(StepSizeSchedule.__subclasses__()) <= covered

    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_negative_total_rejected(self, schedule):
        with pytest.raises(ValueError, match="non-negative"):
            schedule.rates(-1)
