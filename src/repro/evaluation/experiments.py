"""EXPERIMENTS.md generation: collect bench panels into one report.

The benchmark harness writes every regenerated table/figure panel to
``benchmarks/results/*.txt``. This module assembles those panels — plus
the static paper-vs-measured commentary — into the EXPERIMENTS.md
deliverable, so the report always reflects the latest bench run::

    python -m repro.evaluation.experiments [results_dir] [output_md]
"""

from __future__ import annotations

import pathlib
import sys
from typing import Optional

#: (experiment id, result files, paper's finding, what to look for in ours)
EXPERIMENT_INDEX = [
    ("Table 2 — (ε,δ)-DP convergence rates",
     ["table2_rates", "table2_empirical"],
     "Ours converges better than BST14 by log^{3/2} m (convex) and "
     "sqrt(d) log m (strongly convex) for constant passes.",
     "Rate table shows the exact advantage factors; measured excess risk "
     "shrinks with m and stays below BST14's at the same (m, ε, δ)."),
    ("Table 3 — datasets",
     ["table3_datasets", "table3_standins"],
     "MNIST 60000/10000×784(→50), Protein 72876/72875×74, "
     "Forest 498010/83002×54.",
     "Registry reproduces the paper rows verbatim; stand-ins match m/d/"
     "class structure at a configurable scale."),
    ("Table 4 — step sizes",
     ["table4_stepsizes", "table4_semantics"],
     "Ours: 1/sqrt(m) (convex), min(1/β, 1/(γt)) (strongly convex); "
     "SCS13: 1/sqrt(t); BST14: Algorithm 4/5 schedules.",
     "All cells resolved with concrete values for a Protein-sized run."),
    ("Figure 1 / §4.2 — integration effort",
     ["fig1_integration"],
     "Ours ≈ 10 LOC of front-end Python; SCS13/BST14 need dozens of LOC "
     "of C inside the UDA transition function.",
     "Measured on our substrate: the bolt-on block is <15 LOC and touches "
     "no engine internals; the white-box path modifies the UDA."),
    ("Figure 2 — scalability",
     ["fig2a_scalability_memory", "fig2b_scalability_disk", "fig2_consistency"],
     "All algorithms scale linearly; SCS13/BST14 are ~2–3× slower in "
     "memory; on disk I/O dominates and the gap collapses.",
     "Same three shapes from the calibrated cost model; the analytic "
     "counters match an executed engine run (consistency check)."),
    ("Figure 3 — accuracy, public/fixed tuning",
     ["fig3_mnist", "fig3_protein", "fig3_covertype"],
     "Ours up to 4× better than SCS13/BST14, approaching noiseless "
     "fastest; b=50, k=10, λ=1e-4.",
     "Ours ≥ both baselines at every ε and converges to the noiseless "
     "line; crossover ε values sit higher than the paper's because the "
     "stand-ins are 10–50× smaller (noise ∝ 1/m)."),
    ("Figure 4 — passes and batch size",
     ["fig4a_convex_passes", "fig4b_sc_passes", "fig4c_batch_size"],
     "Convex: more passes hurt (noise ∝ k). Strongly convex: passes "
     "free. Batch 1→10 drastically reduces noise.",
     "All three monotonicities reproduced."),
    ("Figure 5 — runtime overhead",
     ["fig5_row1_epochs", "fig5_row2_batch"],
     "Ours ≈ noiseless; SCS13/BST14 2–6× slower at b≤10, gap disappears "
     "by b=500.",
     "Executed engine runs show the same ordering and the same "
     "batch-size collapse."),
    ("Figure 6 — accuracy, private tuning",
     ["fig6_mnist", "fig6_protein", "fig6_covertype"],
     "With Algorithm 3 tuning, ours up to 3.5× better than BST14 and 3× "
     "better than SCS13.",
     "Ours ≥ SCS13 on every panel; BST14 trails on most panels (see note "
     "on BST14 calibration in §Deviations)."),
    ("Figure 7 — Huber SVM",
     ["fig7_mnist_huber", "fig7_protein_huber", "fig7_covertype_huber"],
     "Same ordering as logistic regression; ours up to 6× better than "
     "BST14 on MNIST.",
     "Same ordering reproduced with the h=0.1 Huber loss."),
    ("Figures 8–9 — HIGGS / KDDCup-99",
     ["fig8_higgs", "fig8_kddcup", "fig9_higgs", "fig9_kddcup"],
     "For very large m privacy is 'for free' for ours — accuracy matches "
     "noiseless even at tiny ε; baselines remain notably worse.",
     "Ours within 2 points of noiseless from ε=0.05 (0.01 at full scale); "
     "SCS13 far below at every ε."),
    ("Figure 10 — mini-batch size 50–200",
     ["fig10_minibatch"],
     "Near-native accuracy as b grows; baselines improve but stay worse.",
     "Gap to noiseless < 0.1 at b=200; ours ≥ baselines at every b."),
    ("Ablations (DESIGN.md §6)",
     ["ablation_bst14", "ablation_schedules", "ablation_schedule_accuracy",
      "ablation_averaging"],
     "§4.1: extended BST14 beats naively-stopped BST14. §3.2: decreasing/"
     "sqrt step regimes; model averaging costs no sensitivity.",
     "All confirmed; averaging leaves ∆₂ unchanged (Lemma 10)."),
]

DEVIATIONS = """\
## Deviations and caveats

* **Synthetic stand-ins.** No network access, so each dataset is a
  generator matched on m, d, class count, and separability regime
  (DESIGN.md §3). Absolute accuracies therefore differ from the paper;
  every bench asserts the *shape* (ordering, monotonicity, crossovers).
* **Scale.** Bench defaults run the stand-ins at 1/10–1/50 of paper size
  to stay laptop-fast. Privacy noise scales like 1/m (strongly convex) or
  1/sqrt(m) (convex), so the ε at which "ours" meets the noiseless line is
  correspondingly larger than in the paper; pass ``scale=1.0`` to the
  loaders for full-size runs.
* **BST14 calibration.** Algorithm 4's noise annotation ("σ²ι, ι = 1 for
  logistic regression") is ambiguous for mini-batches. We implement the
  literal reading — variance σ²·ι with ι the per-iteration sensitivity
  2L/b, and the step-size bound G computed from the *raw* σ as printed.
  An internally-consistent recalibration (G from the effective noise)
  makes BST14 notably stronger; the repository ships the literal version
  and documents the alternative in ``repro/baselines/bst14.py``.
* **Runtimes.** The paper measures C UDAs inside PostgreSQL; we charge a
  calibrated cost model with counters from executed engine runs (validated
  by a consistency bench) and additionally time the real Python hot loops
  with pytest-benchmark. Ratios and scaling shapes are preserved; absolute
  seconds are not comparable.
* **ε range for the Gaussian mechanism.** Theorem 3 requires ε < 1; the
  paper sweeps ε up to 4 with the same formula and we follow it
  (``GaussianMechanism(strict=True)`` restores the theorem's precondition).
"""


def collect(results_dir: pathlib.Path) -> str:
    """Build the EXPERIMENTS.md text from a results directory."""
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Regenerated by `pytest benchmarks/ --benchmark-only`; panels below",
        "are the latest `benchmarks/results/*.txt` output. Every bench also",
        "*asserts* its paper-shape claim, so a green bench run certifies the",
        "qualitative findings.",
        "",
    ]
    for title, files, paper_claim, measured in EXPERIMENT_INDEX:
        lines.append(f"## {title}")
        lines.append("")
        lines.append(f"**Paper:** {paper_claim}")
        lines.append("")
        lines.append(f"**Measured:** {measured}")
        lines.append("")
        for name in files:
            path = results_dir / f"{name}.txt"
            if path.exists():
                lines.append(f"<details><summary>{name}</summary>")
                lines.append("")
                lines.append("```")
                lines.append(path.read_text().rstrip())
                lines.append("```")
                lines.append("")
                lines.append("</details>")
                lines.append("")
            else:
                lines.append(f"*(panel `{name}` not yet generated — run the benches)*")
                lines.append("")
    lines.append(DEVIATIONS)
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    results = pathlib.Path(args[0]) if args else pathlib.Path("benchmarks/results")
    output = pathlib.Path(args[1]) if len(args) > 1 else pathlib.Path("EXPERIMENTS.md")
    output.write_text(collect(results))
    print(f"wrote {output} from {results}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
