"""Grid-search parameter spaces (the paper uses "a standard grid search").

The paper's tuning grids (Sections 4.1 and 4.5):

* number of passes ``k in {5, 10}``;
* regularization ``lambda in {0.0001, 0.001, 0.01}``;
* the mini-batch size is fixed at ``b = 50`` for the accuracy studies;
* ``R = 1/lambda`` is derived, not tuned ("free parameters" principle).

:func:`paper_grid` reproduces exactly that space; :class:`ParameterGrid`
is the generic cross-product helper.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterator, List, Sequence


class ParameterGrid:
    """Cross product of named value lists, iterated deterministically.

    >>> list(ParameterGrid({"k": [5, 10], "lam": [0.1]}))
    [{'k': 5, 'lam': 0.1}, {'k': 10, 'lam': 0.1}]
    """

    def __init__(self, space: Dict[str, Sequence]):
        if not space:
            raise ValueError("parameter space must not be empty")
        for key, values in space.items():
            if len(values) == 0:
                raise ValueError(f"parameter {key!r} has no candidate values")
        self.space = {key: list(values) for key, values in sorted(space.items())}

    def __iter__(self) -> Iterator[Dict]:
        keys = list(self.space)
        for combo in product(*(self.space[key] for key in keys)):
            yield dict(zip(keys, combo))

    def __len__(self) -> int:
        size = 1
        for values in self.space.values():
            size *= len(values)
        return size

    def candidates(self) -> List[Dict]:
        """Materialized list of all parameter combinations."""
        return list(self)


def paper_grid(
    passes: Sequence[int] = (5, 10),
    regularization: Sequence[float] = (0.0001, 0.001, 0.01),
    include_regularization: bool = True,
) -> ParameterGrid:
    """The grid of Sections 4.1/4.5: k in {5,10}, lambda in {1e-4,1e-3,1e-2}.

    The convex tests do not tune lambda (no regularizer there —
    ``include_regularization=False`` drops it, leaving k alone).
    """
    space: Dict[str, Sequence] = {"passes": list(passes)}
    if include_regularization:
        space["regularization"] = list(regularization)
    return ParameterGrid(space)
