"""Elevator scans: jobs board the running shared scan mid-flight.

The acceptance contract: a boarded job's released weights are
bitwise-equal (``np.array_equal``, atol=0) to the same job run solo with
``run_sgd(..., start_offset=<its boarding offset>)`` — boarding changes
*where on the permutation* a job's epochs start, never a single float of
what they compute from there. Around that contract this suite pins:

* the component property, under hypothesis, over
  (boarding offset x passes x losses x batch sizes x noisy/noiseless);
* page accounting: one cursor stream feeds every rider, so a flight's
  pages are loops-of-the-cursor, not sum-of-riders, while each rider's
  own ``group_pages`` is exactly its solo cost;
* the service-level boarding path: a job submitted while a flight is
  mid-scan boards at a non-zero offset, carries provenance
  (``boarding_offset`` / ``epochs_ridden``), and only offset-0 releases
  are primed into the result cache;
* ledger caps holding under boarders racing live cursors on two tables.
"""

from __future__ import annotations

import threading
import time
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accountant import would_overflow
from repro.core.bolton import BoltOnCandidate
from repro.core.mechanisms import mechanism_for
from repro.core.sensitivity import sensitivity_for_schedule
from repro.optim.losses import LogisticLoss
from repro.rdbms.bismarck import BismarckSession, NoisySGDUDA
from repro.rdbms.uda import SGDUDA, ElevatorMultiSGDUDA
from repro.service import JobStatus, TrainingService
from tests.conftest import make_binary_data

# Component-level shape: small enough that hypothesis examples are cheap,
# with a ragged last chunk (60 = 16 + 16 + 16 + 12) so grid arithmetic
# around the wrap is exercised, not dodged.
M, D, CHUNK = 60, 5, 16
NUM_CHUNKS = -(-M // CHUNK)
X, Y = make_binary_data(M, D, seed=31)

# Service-level shape (matches the async suite's).
MS, DS = 300, 8
XS, YS = make_binary_data(MS, DS, seed=21)
EPS = 0.05
SCAN_SEED = 5
SERVICE_CHUNK = 64


def fresh_scan(session: BismarckSession):
    session.load_table("t", X, Y)
    return session.shared_scan("t", random_state=np.random.SeedSequence([7]))


def step_noise(step_index: int, dimension: int) -> np.ndarray:
    """A pure function of (step, dim): identical on both sides of every
    equivalence check, so noisy rides must line their step counters up
    exactly with the solo run's to match bitwise."""
    return np.random.default_rng([4242, step_index, dimension]).standard_normal(
        dimension
    )


def make_uda(loss, passes: int, batch_size: int, noisy: bool):
    schedule, projection, _ = BoltOnCandidate(
        loss=loss, passes=passes, batch_size=batch_size
    ).resolve(M)
    if noisy:
        return NoisySGDUDA(loss, schedule, step_noise, batch_size, projection)
    return SGDUDA(loss, schedule, batch_size, projection)


class TestBoardingEquivalence:
    @settings(max_examples=24, deadline=None)
    @given(
        board_chunk=st.integers(0, NUM_CHUNKS - 1),
        passes=st.integers(1, 3),
        regularization=st.sampled_from([1e-4, 1e-3, 1e-2]),
        batch_size=st.sampled_from([7, 16, 25]),
        noisy=st.booleans(),
    )
    def test_boarded_ride_is_bitwise_a_solo_offset_run(
        self, board_chunk, passes, regularization, batch_size, noisy
    ):
        offset = board_chunk * CHUNK
        loss = LogisticLoss(regularization)

        solo = BismarckSession()
        report = solo.run_sgd(
            "t",
            make_uda(loss, passes, batch_size, noisy),
            epochs=passes,
            chunk_size=CHUNK,
            shuffle=fresh_scan(solo),
            start_offset=offset,
        )

        ride = BismarckSession()
        cursor = fresh_scan(ride).cursor(CHUNK)
        for _ in range(board_chunk):  # the flight is mid-loop when we board
            cursor.next_chunk()
        elevator = ElevatorMultiSGDUDA(num_tuples=M, dimension=D)
        rider = elevator.admit(
            make_uda(loss, passes, batch_size, noisy),
            passes=passes,
            boarding_offset=cursor.position,
        )
        assert rider.boarding_offset == offset
        while not rider.done:
            elevator.fold_chunk(*cursor.next_chunk())

        assert np.array_equal(report.model, rider.model)  # atol=0
        assert rider.epochs_completed == passes
        # A full rotation delivers exactly M tuples, so the ride exits
        # back at its boarding chunk.
        assert cursor.position == offset

    def test_flight_pages_are_one_stream_not_per_rider(self):
        session = BismarckSession()
        cursor = fresh_scan(session).cursor(CHUNK)
        pool_stats = session.pool.stats_for(session.catalog.get("t").heap)
        elevator = ElevatorMultiSGDUDA(num_tuples=M, dimension=D)
        loss = LogisticLoss(1e-3)

        first = elevator.admit(
            make_uda(loss, 2, 10, False), passes=2, boarding_offset=cursor.position
        )
        streamed = 0
        features, labels = cursor.next_chunk()
        streamed += labels.shape[0]
        elevator.fold_chunk(features, labels)
        # A second model boards the live loop one chunk in.
        second = elevator.admit(
            make_uda(loss, 1, 25, False), passes=1, boarding_offset=cursor.position
        )
        assert second.boarding_offset == CHUNK
        while elevator.active:
            features, labels = cursor.next_chunk()
            streamed += labels.shape[0]
            elevator.fold_chunk(features, labels)

        assert first.done and second.done
        # Pages are charged once per cursor loop: the pool saw exactly
        # the single stream, and the opener's 2 passes bound it.
        assert streamed == 2 * M
        assert pool_stats.page_reads == streamed
        assert pool_stats.page_reads < 2 * M + 1 * M  # < sum of solo rides
        assert cursor.loops == 2


def make_elevator_service(workers: int = 1, cap: float = 10.0, **kwargs):
    service = TrainingService(
        elevator=True,
        scan_seed=SCAN_SEED,
        chunk_size=SERVICE_CHUNK,
        workers=workers,
        **kwargs,
    )
    service.register_table("t", XS, YS)
    service.open_budget("alice", "t", cap)
    service.open_budget("bob", "t", cap)
    return service


def solo_release(record, features, labels) -> np.ndarray:
    """Replicate the scheduler's release for ``record`` from scratch:
    a fresh engine, the table's service permutation, a solo
    ``run_sgd(start_offset=record.boarding_offset)``, and the job's own
    noise stream — the reference the acceptance contract compares to."""
    job = record.job
    session = BismarckSession()
    session.load_table(job.table, features, labels)
    shuffle = session.shared_scan(
        job.table,
        random_state=np.random.SeedSequence(
            [SCAN_SEED, zlib.crc32(job.table.encode("utf-8"))]
        ),
    )
    m = features.shape[0]
    schedule, projection, properties = job.candidate.resolve(m)
    sensitivity = sensitivity_for_schedule(
        properties, schedule, m, job.candidate.passes, job.candidate.batch_size
    )
    uda = SGDUDA(job.candidate.loss, schedule, job.candidate.batch_size, projection)
    report = session.run_sgd(
        job.table,
        uda,
        epochs=job.candidate.passes,
        chunk_size=SERVICE_CHUNK,
        shuffle=shuffle,
        start_offset=record.boarding_offset,
    )
    _, noise_rng = job.spawn_streams()
    noise = mechanism_for(job.privacy).sample(
        report.model.shape[0], sensitivity.value, job.privacy, noise_rng
    )
    return report.model + noise


class GatedLoss(LogisticLoss):
    """Blocks every gradient until released — holds a flight mid-scan so
    the test can board a second job at a deterministic non-zero offset."""

    def __init__(self, regularization):
        super().__init__(regularization)
        self.started = threading.Event()
        self.release = threading.Event()

    def batch_gradient(self, w, X_batch, y_batch):
        self.started.set()
        self.release.wait(timeout=30.0)
        return super().batch_gradient(w, X_batch, y_batch)


class TestServiceBoarding:
    def test_late_job_boards_the_running_flight(self):
        service = make_elevator_service(workers=1)
        gate = GatedLoss(1e-3)
        opener = service.submit(
            "alice", "t", gate, epsilon=EPS, passes=2, batch_size=25, seed=1
        )
        service.start()
        try:
            assert gate.started.wait(timeout=10.0), "flight never took off"
            # The cursor is mid-loop (inside chunk 0's fold). This submit
            # routes onto the open flight; the driver admits it at the
            # next chunk boundary — no window wait, no fresh scan.
            rider = service.submit(
                "bob", "t", LogisticLoss(1e-3), epsilon=EPS, passes=1,
                batch_size=10, seed=2,
            )
            gate.release.set()
            assert rider.wait(timeout=30.0)
            assert opener.wait(timeout=30.0)
        finally:
            service.stop()

        assert opener.status is JobStatus.COMPLETED
        assert rider.status is JobStatus.COMPLETED
        assert opener.dispatch == "elevator"
        assert rider.dispatch == "elevator"
        # Provenance: the opener boarded the parked cursor; the late job
        # boarded mid-loop, past the chunk that was folding at submit.
        assert opener.boarding_offset == 0
        assert rider.boarding_offset > 0
        assert rider.boarding_offset % SERVICE_CHUNK == 0
        assert opener.epochs_ridden == 2
        assert rider.epochs_ridden == 1
        # The acceptance contract, at the service boundary.
        assert np.array_equal(rider.model, solo_release(rider, XS, YS))
        assert np.array_equal(opener.model, solo_release(opener, XS, YS))
        # One flight: a single scan, pages bounded by the cursor stream
        # (2 opener loops + the boarder's ride into loop 3), not the sum
        # of two solo scans at their windows' boundaries.
        assert service.scheduler.table_scans["t"] == 1
        assert rider.group_pages == 1 * MS

    def test_offset_releases_are_not_primed_offset_zero_ones_are(self):
        service = make_elevator_service(workers=1)
        gate = GatedLoss(1e-3)
        service.submit("alice", "t", gate, epsilon=EPS, passes=2,
                       batch_size=25, seed=1)
        service.start()
        try:
            assert gate.started.wait(timeout=10.0)
            rider = service.submit(
                "bob", "t", LogisticLoss(1e-3), epsilon=EPS, passes=1,
                batch_size=10, seed=2,
            )
            gate.release.set()
            assert rider.wait(timeout=30.0)
        finally:
            service.stop()
        assert rider.boarding_offset > 0

        # The rider's release is specific to where the cursor was when it
        # boarded — resubmitting the identical job must MISS and retrain.
        again = service.submit(
            "bob", "t", LogisticLoss(1e-3), epsilon=EPS, passes=1,
            batch_size=10, seed=2,
        )
        assert again.status is JobStatus.QUEUED
        service.drain()
        assert again.status is JobStatus.COMPLETED
        assert again.boarding_offset == 0  # opened its own flight
        assert np.array_equal(again.model, solo_release(again, XS, YS))

        # That offset-0 release IS cache-eligible: third submission hits.
        third = service.submit(
            "bob", "t", LogisticLoss(1e-3), epsilon=EPS, passes=1,
            batch_size=10, seed=2,
        )
        assert third.dispatch == "cached"
        assert np.array_equal(third.model, again.model)

    def test_heterogeneous_jobs_share_one_cursor_stream(self):
        """Jobs with four different (batch_size, passes) signatures — zero
        fusion compatibility — still ride ONE flight: the elevator key is
        the table alone."""
        service = make_elevator_service(workers=1)
        shapes = [(1, 10), (2, 25), (1, 50), (2, 7)]
        records = [
            service.submit(
                "alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                passes=p, batch_size=b, seed=100 + i,
            )
            for i, (p, b) in enumerate(shapes)
        ]
        service.drain()
        assert all(r.status is JobStatus.COMPLETED for r in records)
        assert all(r.dispatch == "elevator" for r in records)
        # One scan for the whole set; claimed together, all open at 0.
        assert service.scheduler.table_scans["t"] == 1
        key, job_ids, pages = service.scheduler.dispatch_log[-1]
        assert key == ("t",)
        assert len(job_ids) == len(shapes)
        # Flight pages = cursor loops (bounded by the longest ride).
        assert pages == 2 * MS
        for record, (passes, _) in zip(records, shapes):
            assert record.boarding_offset == 0
            assert record.epochs_ridden == passes
            # Each rider's own ride spans exactly its solo page cost.
            assert record.group_pages == passes * MS
            assert np.array_equal(record.model, solo_release(record, XS, YS))


class TestElevatorLedgerRace:
    def test_caps_hold_with_boarders_racing_cursors_on_two_tables(self):
        """spent + reserved <= cap at every sampled instant while
        submitters race live flights on two tables, and the final spend
        is exactly the committed jobs' total per account."""
        cap = 0.4
        X2, Y2 = make_binary_data(MS, DS, seed=22)
        service = make_elevator_service(workers=2, cap=cap)
        service.register_table("u", X2, Y2)
        service.open_budget("alice", "u", cap)
        service.start()
        violations: list = []
        stop_sampling = threading.Event()

        def sampler():
            while not stop_sampling.is_set():
                for statement in service.budgets():
                    if would_overflow(
                        statement.cap,
                        statement.spent[0] + statement.reserved[0],
                        statement.spent[1] + statement.reserved[1],
                    ):
                        violations.append(statement)
                time.sleep(0.001)

        records: list = []
        lock = threading.Lock()

        def submitter(table, base_seed):
            # Heterogeneous shapes so late submissions genuinely board
            # (any job on the table is elevator-compatible).
            for index in range(8):
                record = service.submit(
                    "alice", table, LogisticLoss(1e-3), epsilon=0.06,
                    passes=1 + index % 2, batch_size=(10, 25, 50)[index % 3],
                    seed=base_seed + index,
                )
                with lock:
                    records.append(record)
                time.sleep(0.002)  # arrivals staggered across the flights

        sampler_thread = threading.Thread(target=sampler)
        sampler_thread.start()
        try:
            submitters = [
                threading.Thread(target=submitter, args=(table, 30_000 * (i + 1)))
                for i, table in enumerate(("t", "u"))
            ]
            for thread in submitters:
                thread.start()
            for thread in submitters:
                thread.join()
            assert service.loop.wait_quiescent(timeout=60.0)
        finally:
            stop_sampling.set()
            sampler_thread.join()
            service.stop()

        assert not violations, f"ledger overspent under race: {violations[:3]}"
        for table in ("t", "u"):
            committed = sum(
                record.receipt.parameters.epsilon
                for record in records
                if record.status is JobStatus.COMPLETED
                and record.job.table == table
            )
            statement = [
                s for s in service.budgets()
                if s.principal == "alice" and s.table == table
            ][0]
            assert statement.spent[0] == pytest.approx(committed)
            assert statement.reserved == (0.0, 0.0)
        for record in records:
            assert record.status in (JobStatus.COMPLETED, JobStatus.REJECTED), (
                record.error
            )
            if record.status is JobStatus.COMPLETED:
                assert np.array_equal(
                    record.model,
                    solo_release(
                        record, XS if record.job.table == "t" else X2,
                        YS if record.job.table == "t" else Y2,
                    ),
                )
