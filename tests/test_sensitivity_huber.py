"""Sensitivity property tests for the Huber SVM loss.

The core empirical sensitivity tests use logistic regression; the paper's
Appendix B claims the same analysis covers the Huber-smoothed hinge
(L <= 1, beta <= 1/(2h)). These tests replay the neighbouring-dataset
verification with the Huber loss across smoothing widths.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sensitivity import (
    convex_constant_step,
    effective_minibatch_divisor,
    strongly_convex_decreasing_step,
)
from repro.optim.losses import HuberSVMLoss
from repro.optim.projection import L2BallProjection
from repro.optim.schedules import CappedInverseTSchedule, ConstantSchedule
from tests.test_sensitivity import paired_divergence


class TestHuberConstants:
    @given(h=st.floats(0.01, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_appendix_b_bounds(self, h):
        props = HuberSVMLoss(smoothing=h).properties()
        assert props.lipschitz <= 1.0
        assert props.smoothness == pytest.approx(1.0 / (2.0 * h))

    def test_step_size_regime_depends_on_h(self):
        # eta <= 2/beta = 4h: a small h forces small steps.
        props = HuberSVMLoss(smoothing=0.05).properties()
        with pytest.raises(ValueError, match="2/beta"):
            convex_constant_step(props, eta=0.5, passes=1)
        convex_constant_step(props, eta=0.1, passes=1)  # 0.1 <= 0.2 is fine


class TestHuberConvexSensitivity:
    @given(
        m=st.integers(10, 30),
        passes=st.integers(1, 3),
        h=st.floats(0.1, 0.5),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=20, deadline=None)
    def test_empirical_divergence_within_bound(self, m, passes, h, seed):
        loss = HuberSVMLoss(smoothing=h)
        props = loss.properties()
        eta = min(0.3, 2.0 / props.smoothness)
        bound = convex_constant_step(props, eta, passes).value
        measured = paired_divergence(
            loss, ConstantSchedule(eta), m, 5, passes, seed=seed
        )
        assert measured <= bound + 1e-9

    @given(m=st.integers(12, 30), batch=st.integers(2, 5), seed=st.integers(0, 300))
    @settings(max_examples=12, deadline=None)
    def test_minibatch_bound(self, m, batch, seed):
        loss = HuberSVMLoss(smoothing=0.25)
        props = loss.properties()
        eta = 2.0 / props.smoothness
        # The engine keeps the short tail batch, so the bound must divide by
        # the worst-case min(b, m mod b) — hypothesis found m=13, b=3 here.
        divisor = effective_minibatch_divisor(m, batch)
        bound = convex_constant_step(props, eta, 2, divisor).value
        measured = paired_divergence(
            loss, ConstantSchedule(eta), m, 4, 2, batch_size=batch, seed=seed
        )
        assert measured <= bound + 1e-9


class TestHuberStronglyConvexSensitivity:
    @given(
        m=st.integers(10, 30),
        passes=st.integers(1, 3),
        lam=st.floats(0.05, 0.5),
        seed=st.integers(0, 300),
    )
    @settings(max_examples=20, deadline=None)
    def test_empirical_divergence_within_lemma8(self, m, passes, lam, seed):
        loss = HuberSVMLoss(smoothing=0.25, regularization=lam)
        radius = 1.0 / lam
        props = loss.properties(radius=radius)
        schedule = CappedInverseTSchedule(props.smoothness, props.strong_convexity)
        bound = strongly_convex_decreasing_step(props, m, passes).value
        measured = paired_divergence(
            loss, schedule, m, 5, passes, seed=seed,
            projection=L2BallProjection(radius),
        )
        assert measured <= bound + 1e-9

    def test_lemma8_value_for_huber(self):
        lam = 0.01
        loss = HuberSVMLoss(smoothing=0.1, regularization=lam)
        props = loss.properties(radius=1 / lam)
        bound = strongly_convex_decreasing_step(props, m=1000, passes=5)
        # L = 1 + lam*R = 2, gamma = lam -> 2*2/(0.01*1000) = 0.4
        assert bound.value == pytest.approx(0.4)
