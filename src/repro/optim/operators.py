"""Gradient-update operators and their expansiveness / boundedness bounds.

The paper's whole sensitivity analysis reduces SGD to compositions of
operators ``G_{l,eta}(w) = w - eta * grad l(w)`` (equation (2)) and tracks
how far two parallel runs can drift using two properties:

* **expansiveness** (Definition 2): ``sup ||G(u) - G(v)|| / ||u - v||``;
* **boundedness** (Definition 3): ``sup ||G(w) - w||``.

Lemmas 1–3 supply closed-form bounds for these, and Lemma 4 (the
Hardt–Recht–Singer growth recursion) combines them into a bound on the
divergence ``delta_t`` of two runs. This module implements the operators
and the closed-form bounds; :mod:`repro.optim.growth` implements the
recursion itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.optim.losses import Loss, LossProperties
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class OperatorBounds:
    """Expansiveness rho and boundedness sigma of one gradient update."""

    expansiveness: float
    boundedness: float


class GradientUpdate:
    """The operator ``G_{l,eta}`` of equation (2) for one example ``(x, y)``."""

    def __init__(self, loss: Loss, x: np.ndarray, y: float, eta: float):
        self.loss = loss
        self.x = np.asarray(x, dtype=np.float64)
        self.y = float(y)
        self.eta = check_positive(eta, "eta")

    def __call__(self, w: np.ndarray) -> np.ndarray:
        return w - self.eta * self.loss.gradient(w, self.x, self.y)


class BatchGradientUpdate:
    """Mini-batch update ``w - eta * mean_i grad l_i(w)`` (Section 3.2.3).

    The paper observes this equals the average ``(1/b) sum_i G_i(w)`` of the
    individual operators, which is how the factor-``b`` sensitivity
    improvement is proved.
    """

    def __init__(self, loss: Loss, X: np.ndarray, y: np.ndarray, eta: float):
        self.loss = loss
        self.X = np.asarray(X, dtype=np.float64)
        self.y = np.asarray(y, dtype=np.float64)
        self.eta = check_positive(eta, "eta")

    def __call__(self, w: np.ndarray) -> np.ndarray:
        return w - self.eta * self.loss.batch_gradient(w, self.X, self.y)


def expansiveness_bound(properties: LossProperties, eta: float) -> float:
    """Closed-form expansiveness of ``G_{l,eta}`` (Lemmas 1 and 2).

    * convex (gamma = 0), ``eta <= 2/beta``  →  1 (1-expansive);
    * gamma-strongly convex, ``eta <= 1/beta``  →  ``1 - eta*gamma``
      (Lemma 2's simplification, the one used throughout the paper);
    * gamma-strongly convex, ``1/beta < eta <= 2/(beta+gamma)``  →
      ``1 - 2*eta*beta*gamma/(beta+gamma)`` (Lemma 1.2);
    * larger steps: no bound from the paper's lemmas — raise.
    """
    check_positive(eta, "eta")
    beta = properties.smoothness
    gamma = properties.strong_convexity
    if not np.isfinite(beta):
        raise ValueError(
            "expansiveness bounds require a finite smoothness constant; "
            "smooth the loss first (e.g. use HuberSVMLoss instead of HingeLoss)"
        )
    if gamma <= 0.0:
        if eta > 2.0 / beta * (1.0 + 1e-12):
            raise ValueError(
                f"convex expansiveness requires eta <= 2/beta = {2.0 / beta:.6g}, "
                f"got eta = {eta:.6g}"
            )
        return 1.0
    if eta <= 1.0 / beta * (1.0 + 1e-12):
        return max(0.0, 1.0 - eta * gamma)
    if eta <= 2.0 / (beta + gamma) * (1.0 + 1e-12):
        return max(0.0, 1.0 - 2.0 * eta * beta * gamma / (beta + gamma))
    raise ValueError(
        f"strongly convex expansiveness requires eta <= 2/(beta+gamma) = "
        f"{2.0 / (beta + gamma):.6g}, got eta = {eta:.6g}"
    )


def boundedness_bound(properties: LossProperties, eta: float) -> float:
    """Closed-form boundedness ``sigma = eta * L`` (Lemma 3)."""
    check_positive(eta, "eta")
    lipschitz = properties.lipschitz
    if not np.isfinite(lipschitz):
        raise ValueError(
            "boundedness requires a finite Lipschitz constant; bound the "
            "hypothesis space (pass a radius) for regularized losses"
        )
    return eta * lipschitz


def operator_bounds(properties: LossProperties, eta: float) -> OperatorBounds:
    """Both bounds for one update — the inputs to the growth recursion."""
    return OperatorBounds(
        expansiveness=expansiveness_bound(properties, eta),
        boundedness=boundedness_bound(properties, eta),
    )


def empirical_expansiveness(
    update, w1: np.ndarray, w2: np.ndarray
) -> float:
    """Measured expansion ratio of ``update`` on a concrete pair.

    Diagnostic used by tests: for any pair ``(w1, w2)``,
    ``empirical_expansiveness(G, w1, w2) <= expansiveness_bound(...)``.
    """
    gap = float(np.linalg.norm(np.asarray(w1) - np.asarray(w2)))
    if gap == 0.0:
        return 0.0
    return float(np.linalg.norm(update(w1) - update(w2))) / gap


def empirical_boundedness(update, w: np.ndarray) -> float:
    """Measured displacement ``||G(w) - w||`` on a concrete hypothesis."""
    w = np.asarray(w, dtype=np.float64)
    return float(np.linalg.norm(update(w) - w))


def growth_recursion_step(
    delta: float,
    bounds: OperatorBounds,
    same_operator: bool,
) -> float:
    """One step of Lemma 4.

    ``same_operator=True`` is the case ``G_t = G'_t`` (both runs see the
    same example): ``delta <- rho * delta``. Otherwise the runs see
    differing examples and ``delta <- min(rho, 1) * delta + 2 sigma``.
    """
    check_non_negative(delta, "delta")
    rho, sigma = bounds.expansiveness, bounds.boundedness
    if same_operator:
        return rho * delta
    return min(rho, 1.0) * delta + 2.0 * sigma
