"""Loss functions with the analytic constants the sensitivity theory needs.

The paper's analysis (Section 2) is parameterized by three constants of the
per-example loss ``l(w, (x, y))`` over the hypothesis space ``W``:

* ``L`` — Lipschitz constant, a tight upper bound on ``||grad l||``;
* ``beta`` — smoothness, a tight upper bound on ``||Hessian l||``;
* ``gamma`` — strong convexity, the largest value with ``H - gamma*I >= 0``.

Each loss subclass documents and implements its own derivation, matching
the worked examples in the paper (L2-regularized logistic regression in
Section 2, Huber SVM in Appendix B). All losses assume the standard
preprocessing ``||x|| <= 1`` and, when regularized, a hypothesis bound
``||w|| <= R``.

Labels follow the paper's convention ``y in {-1, +1}``.

Two execution paths
-------------------

Every loss exposes the same contract twice over:

* the **scalar path** — ``value(w, x, y)`` / ``gradient(w, x, y)`` on one
  example at a time, the reference semantics the privacy proof reasons
  about;
* the **batch path** — ``batch_value(w, X, y)`` / ``batch_gradient(w, X, y)``
  on an ``(n, d)`` block, the form the vectorized PSGD engine and the
  chunked RDBMS executor consume.

:class:`Loss` is the minimal base: subclasses only have to provide the
scalar pair, and the defaulted batch methods fall back to a row loop so a
third-party loss keeps working on the fast engines (just without the
matrix speedup). :class:`MarginLoss` is the margin-form specialization all
built-in losses use — ``l(w,(x,y)) = phi(y <w,x>) + (lam/2)||w||^2`` — and
overrides the batch pair with true NumPy matrix arithmetic. The two paths
agree to floating-point rounding (a mean of per-row gradients versus one
``X.T @ coef`` contraction), which the vectorized-equivalence test suite
pins down at ``atol=1e-12``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class LossProperties:
    """The (L, beta, gamma) triple of Definition 1 for a concrete loss.

    ``lipschitz`` or ``smoothness`` may be ``inf`` when no finite bound
    exists under the stated assumptions (callers that need a finite value
    raise a clear error instead of silently under-reporting sensitivity).
    """

    lipschitz: float
    smoothness: float
    strong_convexity: float

    @property
    def is_strongly_convex(self) -> bool:
        return self.strong_convexity > 0.0


class Loss(abc.ABC):
    """A convex per-example loss ``l(w, (x, y))`` — the scalar contract.

    Subclasses must provide the per-example :meth:`value` and
    :meth:`gradient`. The batch methods default to a row loop over the
    scalar pair, so a loss that only defines the scalar methods still runs
    on the vectorized PSGD engine and the chunked RDBMS executor; losses
    that can express themselves in matrix form should subclass
    :class:`MarginLoss` (or override the batch pair directly) to get the
    actual speedup.
    """

    #: L2 regularization coefficient (lambda in the paper); 0 when absent.
    regularization: float

    def __init__(self, regularization: float = 0.0):
        self.regularization = check_non_negative(regularization, "regularization")

    # -- scalar contract -------------------------------------------------------

    @abc.abstractmethod
    def value(self, w: np.ndarray, x: np.ndarray, y: float) -> float:
        """Per-example loss ``l(w, (x, y))`` (including any regularizer)."""

    @abc.abstractmethod
    def gradient(self, w: np.ndarray, x: np.ndarray, y: float) -> np.ndarray:
        """Per-example gradient ``grad_w l(w, (x, y))``."""

    # -- batch contract (scalar fallback) --------------------------------------

    def batch_value(self, w: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        """Mean loss over a batch (the empirical risk ``L_S(w)`` when the
        batch is the whole training set).

        Default: a row loop over :meth:`value`. Matrix-form losses override
        this with one vectorized expression.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        total = 0.0
        for row in range(X.shape[0]):
            total += self.value(w, X[row], float(y[row]))
        return total / X.shape[0]

    def batch_gradient(self, w: np.ndarray, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Mean gradient over a batch — the update direction of mini-batch
        SGD (Section 3.2.3).

        Default: accumulate :meth:`gradient` row by row and divide by the
        batch size, exactly the semantics the scalar reference engine uses.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        total = np.zeros_like(np.asarray(w, dtype=np.float64))
        for row in range(X.shape[0]):
            total += self.gradient(w, X[row], float(y[row]))
        return total / X.shape[0]

    # -- multi-model batch contract (scalar fallback) --------------------------

    def batch_value_multi(
        self,
        W: np.ndarray,
        X: np.ndarray,
        y: np.ndarray,
        regularization: np.ndarray | None = None,
    ) -> np.ndarray:
        """Mean loss of ``K`` models at once; returns a ``(K,)`` vector.

        ``W`` is a ``(K, d)`` weight matrix. ``X`` is either one shared
        ``(n, d)`` batch (all models read the same rows — grid search, OvR)
        or a stacked ``(K, n, d)`` tensor of per-model batches (disjoint
        partitions). ``y`` broadcasts the same way: ``(n,)`` shared or
        ``(K, n)`` per-model. ``regularization`` optionally overrides this
        loss's lambda per model (the fused engine trains a heterogeneous
        regularization grid through one representative loss instance).

        Default: a row loop over models through :meth:`batch_value` —
        identical semantics for scalar-only losses, no speedup.
        :class:`MarginLoss` overrides the pair with single einsum/matmul
        contractions.
        """
        W, X, Y, losses = self._multi_args(W, X, y, regularization)
        return np.array(
            [
                losses[k].batch_value(W[k], X[k], Y[k])
                for k in range(W.shape[0])
            ],
            dtype=np.float64,
        )

    def batch_gradient_multi(
        self,
        W: np.ndarray,
        X: np.ndarray,
        y: np.ndarray,
        regularization: np.ndarray | None = None,
    ) -> np.ndarray:
        """Mean gradients of ``K`` models at once; returns ``(K, d)``.

        Shapes and semantics as in :meth:`batch_value_multi`. Default: a
        row loop over models through :meth:`batch_gradient` (the fallback
        that keeps scalar-only losses working on the fused engine).
        """
        W, X, Y, losses = self._multi_args(W, X, y, regularization)
        return np.stack(
            [
                losses[k].batch_gradient(W[k], X[k], Y[k])
                for k in range(W.shape[0])
            ]
        )

    def _multi_args(
        self,
        W: np.ndarray,
        X: np.ndarray,
        y: np.ndarray,
        regularization: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list["Loss"]]:
        """Canonicalize multi-model arguments for the row-loop fallback.

        Returns ``(W (K,d), X (K,n,d) view, Y (K,n) view, losses)`` where
        ``losses[k]`` is this loss re-regularized for model ``k`` (or
        ``self`` when no per-model override was given). Broadcasting uses
        views, so the shared-``X`` case does not copy the batch K times.
        """
        W = np.asarray(W, dtype=np.float64)
        if W.ndim != 2:
            raise ValueError(f"W must be a (K, d) matrix, got shape {W.shape}")
        K, d = W.shape
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 2:
            X = np.broadcast_to(X, (K,) + X.shape)
        elif X.ndim != 3 or X.shape[0] != K:
            raise ValueError(
                f"X must be (n, d) or (K, n, d) with K={K}, got shape {X.shape}"
            )
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1:
            y = np.broadcast_to(y, (K,) + y.shape)
        elif y.ndim != 2 or y.shape[0] != K:
            raise ValueError(
                f"y must be (n,) or (K, n) with K={K}, got shape {y.shape}"
            )
        if regularization is None:
            losses: list[Loss] = [self] * K
        else:
            lam = np.asarray(regularization, dtype=np.float64)
            if lam.shape != (K,):
                raise ValueError(
                    f"regularization must have shape ({K},), got {lam.shape}"
                )
            losses = [
                self if lam[k] == self.regularization
                else self.with_regularization(float(lam[k]))
                for k in range(K)
            ]
        return W, X, y, losses

    # -- analytic constants ---------------------------------------------------

    def properties(self, radius: float | None = None) -> LossProperties:
        """Derive the ``(L, beta, gamma)`` triple of Definition 1.

        Only losses that know their analytic constants (notably
        :class:`MarginLoss` subclasses) can answer; a scalar-only loss is
        trainable but not privately releasable, and says so loudly instead
        of under-reporting sensitivity.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose the (L, beta, gamma) "
            "constants the sensitivity calculation needs; implement "
            "properties() (or subclass MarginLoss) before using this loss "
            "with the private training APIs"
        )

    # -- prediction ------------------------------------------------------------

    def predict(self, w: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Sign predictions in {-1, +1} (zero margin counts as +1)."""
        scores = np.asarray(X, dtype=np.float64) @ np.asarray(w, dtype=np.float64)
        return np.where(scores >= 0.0, 1.0, -1.0)

    def with_regularization(self, regularization: float) -> "Loss":
        """Return a copy of this loss with a different lambda."""
        clone = type(self).__new__(type(self))
        clone.__dict__.update(self.__dict__)
        Loss.__init__(clone, regularization)
        return clone

    def fusion_key(self) -> tuple | None:
        """Hashable identity of this loss *up to regularization*.

        Two losses with equal keys compute the same per-example loss apart
        from their L2 term, so the fused multi-model engine may evaluate
        them through one representative instance with a per-model lambda
        vector (see :meth:`batch_gradient_multi`). Returns ``None`` when
        the loss carries state the key cannot capture — such losses are
        still trainable, just never grouped.
        """
        try:
            items = tuple(
                sorted(
                    (name, value)
                    for name, value in vars(self).items()
                    if name != "regularization"
                )
            )
            hash(items)
        except TypeError:
            return None
        return (type(self), items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(regularization={self.regularization!r})"


def fusion_groups(
    losses: "list[Loss] | tuple[Loss, ...]",
) -> list[tuple["Loss", np.ndarray, np.ndarray]]:
    """Partition model indices into fusable gradient groups.

    Returns ``(representative, indices, lambdas)`` triples: all models in
    a group share a :meth:`Loss.fusion_key`, so one
    ``representative.batch_gradient_multi(W[indices], ...,
    regularization=lambdas)`` call evaluates the whole group. Losses whose
    key is ``None`` form singleton groups (served by their own multi
    method — the row-loop fallback for scalar-only losses). Both the
    fused PSGD engine and the fused SGD UDA build their execution plan
    from this.
    """
    keyed: dict = {}
    singletons: list[list[int]] = []
    for index, loss in enumerate(losses):
        key = loss.fusion_key()
        if key is None:
            singletons.append([index])
        else:
            keyed.setdefault(key, []).append(index)
    groups = []
    for indices in list(keyed.values()) + singletons:
        representative = losses[indices[0]]
        lambdas = np.array(
            [losses[k].regularization for k in indices], dtype=np.float64
        )
        groups.append((representative, np.asarray(indices, dtype=np.int64), lambdas))
    return groups


class MarginLoss(Loss):
    """A loss in the paper's *margin form*.

    Every loss the paper analyses can be written
    ``l(w, (x, y)) = phi(y <w, x>) + (lam/2) ||w||^2``, which is also the
    form required by Shamir's convergence theorems (Section 3.2.4). The
    gradient is then ``y phi'(z) x + lam w`` with ``z = y <w, x>``, and a
    whole mini-batch collapses to one matrix contraction
    ``X.T @ (phi'(z) * y) / n + lam w`` — the vectorized batch path.
    """

    # -- scalar margin form -------------------------------------------------

    @abc.abstractmethod
    def margin_loss(self, z: np.ndarray) -> np.ndarray:
        """``phi(z)`` evaluated element-wise at margins ``z = y <w, x>``."""

    @abc.abstractmethod
    def margin_derivative(self, z: np.ndarray) -> np.ndarray:
        """``phi'(z)`` evaluated element-wise."""

    @abc.abstractmethod
    def margin_lipschitz(self) -> float:
        """Tight bound on ``|phi'|`` (the un-regularized Lipschitz constant)."""

    @abc.abstractmethod
    def margin_smoothness(self) -> float:
        """Tight bound on ``|phi''|`` (the un-regularized smoothness)."""

    # -- scalar contract ------------------------------------------------------

    def value(self, w: np.ndarray, x: np.ndarray, y: float) -> float:
        """Per-example loss ``phi(y <w, x>) + (lam/2)||w||^2``."""
        z = float(y) * float(np.dot(w, x))
        reg = 0.5 * self.regularization * float(np.dot(w, w))
        return float(self.margin_loss(np.asarray(z))) + reg

    def gradient(self, w: np.ndarray, x: np.ndarray, y: float) -> np.ndarray:
        """Per-example gradient ``y phi'(z) x + lam w``."""
        z = float(y) * float(np.dot(w, x))
        coef = float(self.margin_derivative(np.asarray(z))) * float(y)
        return coef * np.asarray(x, dtype=np.float64) + self.regularization * w

    # -- vectorized batch contract --------------------------------------------

    def batch_value(self, w: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        z = y * (X @ w)
        reg = 0.5 * self.regularization * float(np.dot(w, w))
        return float(np.mean(self.margin_loss(z))) + reg

    def batch_gradient(self, w: np.ndarray, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        z = y * (X @ w)
        coef = self.margin_derivative(z) * y
        return (X.T @ coef) / X.shape[0] + self.regularization * w

    # -- vectorized multi-model batch contract ---------------------------------

    def batch_value_multi(
        self,
        W: np.ndarray,
        X: np.ndarray,
        y: np.ndarray,
        regularization: np.ndarray | None = None,
    ) -> np.ndarray:
        W, X, Y, Z, shared = self._multi_margin_terms(W, X, y)
        lam = self._lambda_vector(W.shape[0], regularization)
        reg = 0.5 * lam * np.einsum("kd,kd->k", W, W)
        return np.mean(self.margin_loss(Z), axis=1) + reg

    def batch_gradient_multi(
        self,
        W: np.ndarray,
        X: np.ndarray,
        y: np.ndarray,
        regularization: np.ndarray | None = None,
    ) -> np.ndarray:
        """All K mean gradients in one contraction.

        With margins ``Z = Y * (W X^T)`` (shape ``(K, n)``) the stacked
        gradient is ``(phi'(Z) * Y) X / n + lam * W`` — one GEMM for a
        shared batch, one ``kn,knd->kd`` einsum for per-model batches.
        Per-model row k equals :meth:`batch_gradient` of the corresponding
        single model up to BLAS summation order (the multi-model
        equivalence suite bounds the difference at 1e-12 over whole
        training runs).
        """
        W, X, Y, Z, shared = self._multi_margin_terms(W, X, y)
        lam = self._lambda_vector(W.shape[0], regularization)
        coef = self.margin_derivative(Z) * Y
        n = Z.shape[1]
        if shared:
            G = (coef @ X) / n
        else:
            G = np.einsum("kn,knd->kd", coef, X) / n
        return G + lam[:, None] * W

    def _multi_margin_terms(
        self, W: np.ndarray, X: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool]:
        """Shared shape handling: returns ``(W, X, Y, Z, shared)``.

        ``Z`` is the ``(K, n)`` signed-margin matrix ``y_i <w_k, x_i>``;
        ``shared`` says whether ``X`` stayed a single ``(n, d)`` batch (one
        GEMM serves all models) or is a ``(K, n, d)`` per-model stack.
        """
        W = np.asarray(W, dtype=np.float64)
        if W.ndim != 2:
            raise ValueError(f"W must be a (K, d) matrix, got shape {W.shape}")
        K = W.shape[0]
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 2:
            Z = W @ X.T
            shared = True
        elif X.ndim == 3 and X.shape[0] == K:
            Z = np.einsum("kd,knd->kn", W, X)
            shared = False
        else:
            raise ValueError(
                f"X must be (n, d) or (K, n, d) with K={K}, got shape {X.shape}"
            )
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1:
            Y = np.broadcast_to(y, Z.shape)
        elif y.shape == Z.shape:
            Y = y
        else:
            raise ValueError(
                f"y must be (n,) or (K, n) matching Z {Z.shape}, got {y.shape}"
            )
        return W, X, Y, Z * Y, shared

    def _lambda_vector(self, K: int, regularization: np.ndarray | None) -> np.ndarray:
        if regularization is None:
            return np.full(K, self.regularization, dtype=np.float64)
        lam = np.asarray(regularization, dtype=np.float64)
        if lam.shape != (K,):
            raise ValueError(f"regularization must have shape ({K},), got {lam.shape}")
        return lam

    # -- analytic constants ---------------------------------------------------

    def properties(self, radius: float | None = None) -> LossProperties:
        """Derive ``(L, beta, gamma)`` under ``||x|| <= 1`` and, when the
        loss is regularized, ``||w|| <= radius``.

        Mirrors the paper's Section 2 derivation: with regularization
        ``lam > 0`` and ``||w|| <= R`` we get ``L = L_phi + lam R``,
        ``beta = beta_phi + lam``, ``gamma = lam``; without regularization
        ``L = L_phi``, ``beta = beta_phi``, ``gamma = 0``.
        """
        l_phi = self.margin_lipschitz()
        b_phi = self.margin_smoothness()
        if self.regularization == 0.0:
            return LossProperties(lipschitz=l_phi, smoothness=b_phi, strong_convexity=0.0)
        if radius is None:
            raise ValueError(
                "a hypothesis-space radius is required to bound the Lipschitz "
                "constant of a regularized loss (the paper rescales so that "
                "||w|| <= R; pass radius=R, conventionally R = 1/lambda)"
            )
        check_positive(radius, "radius")
        return LossProperties(
            lipschitz=l_phi + self.regularization * radius,
            smoothness=b_phi + self.regularization,
            strong_convexity=self.regularization,
        )


class LogisticLoss(MarginLoss):
    """Logistic loss ``ln(1 + exp(-y <w, x>))`` with optional L2 term.

    Equation (1) of the paper. ``|phi'(z)| = 1/(1+e^z) <= 1`` and
    ``|phi''(z)| = sigma(z)(1-sigma(z)) <= 1/4``; the paper uses the looser
    ``beta_phi = 1`` in its Section 2 example, but the tight ``1/4`` bound
    is valid and yields slightly larger admissible step sizes. We keep the
    paper's constant by default so sensitivity values match the text, and
    expose the tight constant via ``tight_smoothness``.
    """

    def __init__(self, regularization: float = 0.0, tight_smoothness: bool = False):
        super().__init__(regularization)
        self.tight_smoothness = bool(tight_smoothness)

    def margin_loss(self, z: np.ndarray) -> np.ndarray:
        # log(1 + e^{-z}) computed stably via logaddexp(0, -z).
        return np.logaddexp(0.0, -np.asarray(z, dtype=np.float64))

    def margin_derivative(self, z: np.ndarray) -> np.ndarray:
        # phi'(z) = -1 / (1 + e^{z}), computed stably with expit-style clip.
        z = np.asarray(z, dtype=np.float64)
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = -np.exp(-z[pos]) / (1.0 + np.exp(-z[pos]))
        out[~pos] = -1.0 / (1.0 + np.exp(z[~pos]))
        return out

    def margin_lipschitz(self) -> float:
        return 1.0

    def margin_smoothness(self) -> float:
        return 0.25 if self.tight_smoothness else 1.0


class HuberSVMLoss(MarginLoss):
    """Huber-smoothed hinge loss (Appendix B of the paper).

    With ``z = y <w, x>`` and smoothing width ``h``::

        phi(z) = 0                       if z > 1 + h
               = (1 + h - z)^2 / (4h)    if |1 - z| <= h
               = 1 - z                   if z < 1 - h

    ``|phi'| <= 1`` so ``L_phi = 1``; ``phi''`` is ``1/(2h)`` on the
    quadratic segment and 0 elsewhere, so ``beta_phi = 1/(2h)``.
    """

    def __init__(self, smoothing: float = 0.1, regularization: float = 0.0):
        super().__init__(regularization)
        self.smoothing = check_positive(smoothing, "smoothing")

    def margin_loss(self, z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=np.float64)
        h = self.smoothing
        quad = (1.0 + h - z) ** 2 / (4.0 * h)
        return np.where(z > 1.0 + h, 0.0, np.where(z < 1.0 - h, 1.0 - z, quad))

    def margin_derivative(self, z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=np.float64)
        h = self.smoothing
        quad = -(1.0 + h - z) / (2.0 * h)
        return np.where(z > 1.0 + h, 0.0, np.where(z < 1.0 - h, -1.0, quad))

    def margin_lipschitz(self) -> float:
        return 1.0

    def margin_smoothness(self) -> float:
        return 1.0 / (2.0 * self.smoothing)


class LeastSquaresLoss(MarginLoss):
    """Squared loss ``(1 - y <w, x>)^2 / 2`` in margin form.

    For binary labels in {-1, +1}, ``(y - <w,x>)^2/2 = (1 - z)^2/2`` with
    ``z = y <w, x>``. Over a bounded hypothesis space ``||w|| <= R`` (and
    ``||x|| <= 1``) the margin derivative ``z - 1`` is bounded by
    ``R + 1``, giving ``L_phi = R + 1`` — finite only once a radius is
    known, so this loss requires constrained optimization for privacy.
    """

    def __init__(self, regularization: float = 0.0, margin_bound: float | None = None):
        super().__init__(regularization)
        if margin_bound is not None:
            check_positive(margin_bound, "margin_bound")
        #: bound on |z| used for the Lipschitz constant; defaults to 1 + R
        #: resolved at ``properties()`` time when a radius is supplied.
        self.margin_bound = margin_bound

    def margin_loss(self, z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=np.float64)
        return 0.5 * (1.0 - z) ** 2

    def margin_derivative(self, z: np.ndarray) -> np.ndarray:
        return np.asarray(z, dtype=np.float64) - 1.0

    def margin_lipschitz(self) -> float:
        if self.margin_bound is None:
            return float("inf")
        return self.margin_bound + 1.0

    def margin_smoothness(self) -> float:
        return 1.0

    def properties(self, radius: float | None = None) -> LossProperties:
        if self.margin_bound is None and radius is not None:
            resolved = LeastSquaresLoss(self.regularization, margin_bound=radius)
            return resolved.properties(radius)
        return super().properties(radius)


class HingeLoss(MarginLoss):
    """The (non-smooth) hinge loss, provided for reference only.

    The paper's analysis requires smoothness, which the hinge loss lacks
    (``beta = inf``); private training should use :class:`HuberSVMLoss`
    instead. Keeping the hinge loss lets the test-suite verify that the
    library *refuses* to compute a sensitivity for it.
    """

    def margin_loss(self, z: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, 1.0 - np.asarray(z, dtype=np.float64))

    def margin_derivative(self, z: np.ndarray) -> np.ndarray:
        return np.where(np.asarray(z, dtype=np.float64) < 1.0, -1.0, 0.0)

    def margin_lipschitz(self) -> float:
        return 1.0

    def margin_smoothness(self) -> float:
        return float("inf")
