"""The training service's job model and admission queue.

A :class:`TrainingJob` is one tenant's request to train one bolt-on
private model against a registered table: *what* to train (a structural
:class:`~repro.core.bolton.BoltOnCandidate`), *where* (the table name),
*under which guarantee* (the (ε, δ) the tenant is willing to spend from
their per-(principal, table) budget account), and *with which randomness*
(a deterministic seed that fixes the job's private noise stream).

Determinism contract
--------------------

A job's released weights are a pure function of ``(table contents, the
table's service-wide scan permutation, candidate, seed)`` — notably *not*
of the other jobs it shares a scan with, its queue position, or its
arrival time. The scheduler upholds this by training fused groups in the
engine's bitwise-``exact`` mode over the session's per-table shared scan
and by drawing each job's noise from its own seed-spawned stream; the
scheduler test suite locks the contract in at ``atol=0``.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.core.bolton import BoltOnCandidate
from repro.core.mechanisms import PrivacyParameters
from repro.optim.psgd import elevator_compatibility_key, scan_compatibility_key
from repro.utils.rng import spawn_generators
from repro.utils.validation import check_positive


class JobStatus(enum.Enum):
    """Lifecycle of a submitted job."""

    #: Admitted (budget reserved) and waiting for a scan.
    QUEUED = "queued"
    #: Currently part of a dispatched scan.
    RUNNING = "running"
    #: Trained and released; budget committed, model in the registry.
    COMPLETED = "completed"
    #: Training raised; budget refunded, error recorded.
    FAILED = "failed"
    #: Denied at admission (over budget / unknown account); nothing ran,
    #: nothing was charged — zero pages, zero ε.
    REJECTED = "rejected"
    #: Cancelled while still QUEUED (tenant called ``cancel``): the
    #: reservation was refunded before any scan touched data — zero
    #: pages, zero ε. A job that reached a scan can no longer cancel.
    CANCELLED = "cancelled"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class TrainingJob:
    """One tenant's private-training request.

    ``priority`` orders dispatch only (higher first; FIFO within a
    priority level) — by the determinism contract it can never change
    what any job's weights are, only when they become available.
    ``seed`` fixes the job's private randomness: resubmitting the same
    job with the same seed reproduces the same release, and two jobs
    that must be independent should carry different seeds.
    """

    principal: str
    table: str
    candidate: BoltOnCandidate
    epsilon: float
    delta: float = 0.0
    priority: int = 0
    seed: int = 0
    #: Assigned by the service at submission.
    job_id: str = ""
    #: Logical arrival tick assigned at submission (FIFO tiebreak).
    arrival: int = -1

    def __post_init__(self) -> None:
        check_positive(self.epsilon, "epsilon")
        if not self.principal:
            raise ValueError("a job needs a non-empty principal")
        if not self.table:
            raise ValueError("a job needs a target table")

    @property
    def privacy(self) -> PrivacyParameters:
        """The (ε, δ) this job spends from its account."""
        return PrivacyParameters(self.epsilon, self.delta)

    def fusion_key(self) -> tuple:
        """What the shared-scan scheduler groups by.

        The target table plus the scan-lockstep signature
        (:func:`repro.optim.psgd.scan_compatibility_key`): jobs sharing
        this key can train in ONE fused scan; loss/regularization/
        schedule/ε differences never block fusion.
        """
        return (self.table,) + scan_compatibility_key(
            self.candidate.batch_size, self.candidate.passes
        )

    def elevator_key(self) -> tuple:
        """What the shared-cursor (elevator) dispatcher groups by: just
        the table (:func:`repro.optim.psgd.elevator_compatibility_key`).
        Riders keep their own batch phase and epoch counters, so the
        scan-lockstep knobs drop out of the key entirely.
        """
        return (self.table,) + elevator_compatibility_key(
            self.candidate.batch_size, self.candidate.passes
        )

    def spawn_streams(self):
        """The job's two private generators: ``(sgd_rng, noise_rng)``.

        Mirrors :func:`repro.core.bolton.train_bolt_on`'s consumption
        order. The SGD stream is currently unused — the scan permutation
        belongs to the *table*, not the job — but stays reserved so the
        noise stream's identity survives future per-job randomness.
        """
        return spawn_generators(self.seed, 2)

    def cache_identity(self) -> tuple:
        """Everything *job-side* that the released weights depend on.

        By the determinism contract, a release is a pure function of
        (table contents, the table's scan permutation, candidate, privacy
        parameters, job seed). This tuple is the candidate/privacy/seed
        part; the scheduler joins it with the table fingerprint and the
        scan seed to key the cross-drain result cache. ``None`` when the
        candidate's loss has no hashable identity (such jobs still train,
        they are just never cached).

        Principal and priority are deliberately absent: neither reaches a
        single float of the release, so two tenants resubmitting the same
        job share the hit — provided each holds a ledger account on the
        table (the scheduler gates hits on that); the hit spends nothing
        from either account.
        """
        loss_key = self.candidate.loss.fusion_key()
        if loss_key is None:
            return None
        loss_type, loss_state = loss_key
        return (
            loss_type.__name__,
            loss_state,
            float(self.candidate.loss.regularization),
            self.candidate.passes,
            self.candidate.batch_size,
            self.candidate.eta,
            self.candidate.radius,
            self.candidate.average,
            float(self.epsilon),
            float(self.delta),
            self.seed,
        )


def _dispatch_order(job: TrainingJob) -> tuple:
    return (-job.priority, job.arrival)


class JobQueue:
    """Deterministic priority queue: ``(-priority, arrival)`` order.

    The list is kept *in dispatch order on insert* (``bisect.insort`` —
    O(log n) compares plus one O(n) shift), so every claim operation is
    a single O(n) pass with no re-sort. This matters because claims and
    pushes share the scheduler's admission lock: the old sort-at-pop
    scheme charged an O(n log n) re-sort to the same lock ``submit()``
    latency waits on, which at 10^4 queued jobs dominated submit p99
    (see the queue section of ``benchmarks/bench_service.py``). Ties on
    ``(-priority, arrival)`` insert after their equals, preserving the
    stable-sort FIFO the old scheme had. Claiming is table-aware
    (:meth:`next_table` + :meth:`pop_window_for`): the scheduler's
    busy-table protocol depends on every popped window naming a single
    table.
    """

    def __init__(self) -> None:
        self._jobs: List[TrainingJob] = []

    def __len__(self) -> int:
        return len(self._jobs)

    def push(self, job: TrainingJob) -> None:
        bisect.insort(self._jobs, job, key=_dispatch_order)

    def next_table(self, busy=()) -> Optional[str]:
        """The table of the highest-priority queued job whose table is not
        in ``busy`` — what a worker should claim next under per-table
        engine domains (``None`` when every queued table is mid-scan).

        Priority order is preserved *across* tables: among claimable
        tables, the one holding the front of the dispatch order wins, so
        a free engine domain never jumps a higher-priority claimable job.
        The list is in dispatch order, so this is a first-match scan —
        O(1) when the front of the queue is claimable, O(n) only when
        busy tables hold the front. This runs under the scheduler's
        admission lock, which ``submit()`` latency also waits on.
        """
        for job in self._jobs:
            if job.table not in busy:
                return job.table
        return None

    def pop_window_for(self, table: str, window: int) -> List[TrainingJob]:
        """Remove and return up to ``window`` jobs targeting ``table``, in
        dispatch order; jobs on other tables keep their queue positions.
        One O(n) pass — the insert-sorted invariant means no re-sort.
        """
        if window < 1:
            raise ValueError(f"window must be positive, got {window}")
        taken: List[TrainingJob] = []
        kept: List[TrainingJob] = []
        for job in self._jobs:
            if job.table == table and len(taken) < window:
                taken.append(job)
            else:
                kept.append(job)
        self._jobs = kept
        return taken

    def remove(self, job_id: str) -> bool:
        """Remove one queued job by id (the cancel path). Returns whether
        it was found — ``False`` means the job already left the queue
        (claimed into a window or routed onto a flight)."""
        for index, job in enumerate(self._jobs):
            if job.job_id == job_id:
                del self._jobs[index]
                return True
        return False

    def pending(self) -> List[TrainingJob]:
        """The queued jobs in dispatch order (non-destructive)."""
        return list(self._jobs)

    def depth_by_table(self) -> dict:
        """Queued-job count per table (telemetry; one O(n) pass). Caller
        holds whatever lock guards the queue — the scheduler exposes this
        as ``queue_depths()`` under its admission lock."""
        depths: dict = {}
        for job in self._jobs:
            depths[job.table] = depths.get(job.table, 0) + 1
        return depths
