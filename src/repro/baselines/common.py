"""Shared result type and noise plumbing for the white-box baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.mechanisms import PrivacyParameters
from repro.optim.losses import Loss
from repro.optim.psgd import PSGDResult
from repro.utils.validation import check_matrix_labels, check_positive_int


class EpochNoiseBuffer:
    """Serve per-update noise rows out of per-epoch blocked draws.

    The white-box algorithms pay one "sophisticated distribution" draw per
    mini-batch; drawing them one Python call at a time is pure overhead.
    This buffer pre-draws an epoch's worth (``steps_per_epoch`` rows) via
    a block sampler and hands out rows on demand. Every block sampler
    used with it honours the :meth:`NoiseMechanism.sample_batch` contract:
    the blocked draw consumes *its* generator identically to per-step
    draws from that same generator. For SCS13 — whose noise stream was
    already the only per-update consumer of its generator — buffering
    therefore releases exactly the same model as the historical per-step
    code for any seed (regression-tested); BST14's noise instead moved
    onto a dedicated spawned stream (its old stream interleaved index
    sampling, which no blocked draw can replay), so its seeded outputs
    changed once, deliberately, when the buffer landed.

    ``draw_block(count, rng) -> (count, d) array``; ``next(rng)`` returns
    the next row, refilling at epoch boundaries.
    """

    def __init__(
        self,
        draw_block: Callable[[int, np.random.Generator], np.ndarray],
        steps_per_epoch: int,
    ):
        self._draw_block = draw_block
        self._steps = check_positive_int(steps_per_epoch, "steps_per_epoch")
        self._buffer: Optional[np.ndarray] = None
        self._position = 0
        #: Rows handed out — the per-update draw count the cost model sees.
        self.rows_served = 0

    def next(self, rng: np.random.Generator) -> np.ndarray:
        if self._buffer is None or self._position == self._buffer.shape[0]:
            self._buffer = np.asarray(self._draw_block(self._steps, rng))
            if self._buffer.ndim != 2 or self._buffer.shape[0] != self._steps:
                raise ValueError(
                    f"draw_block must return ({self._steps}, d), "
                    f"got {self._buffer.shape}"
                )
            self._position = 0
        row = self._buffer[self._position]
        self._position += 1
        self.rows_served += 1
        return row


@dataclass
class BaselineResult:
    """Outcome of one SCS13 / BST14 training run.

    Unlike the bolt-on algorithms there is no single released noise vector:
    noise enters every gradient update, so the model itself is the private
    object and there is no meaningful noiseless twin.
    """

    model: np.ndarray
    privacy: PrivacyParameters
    algorithm: str
    psgd: PSGDResult = field(repr=False)
    loss: Loss = field(repr=False)
    #: Per-update noise standard deviation (Gaussian) or scale (Laplace),
    #: recorded for the runtime/overhead accounting.
    per_step_noise_scale: Optional[float] = None
    #: Number of noise samples drawn (== number of gradient updates).
    noise_draws: int = 0

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.loss.predict(self.model, X)

    def accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        X, y = check_matrix_labels(X, y)
        return float(np.mean(self.predict(X) == y))
