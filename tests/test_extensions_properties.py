"""Property tests for the Section 3.2.3 extensions.

Covers the parts of the analysis not exercised by the core sensitivity
tests: model averaging (Lemma 10), fresh permutations per pass,
constrained optimization, and the non-adaptivity precondition of the
privacy argument (Lemma 5).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bolton import private_convex_psgd, private_strongly_convex_psgd
from repro.optim.growth import averaged_divergence_bound
from repro.optim.losses import LogisticLoss
from repro.optim.projection import L2BallProjection
from repro.optim.psgd import PSGD, PSGDConfig
from repro.optim.schedules import ConstantSchedule
from tests.conftest import make_binary_data


def paired_runs(loss, config, m, d, differ_at, seed):
    """Two PSGD runs on neighbouring datasets sharing the permutation."""
    X, y = make_binary_data(m, d, seed=seed)
    X2, y2 = X.copy(), y.copy()
    rng = np.random.default_rng(seed + 1)
    replacement = rng.standard_normal(d)
    X2[differ_at] = replacement / max(np.linalg.norm(replacement), 1.0)
    y2[differ_at] = -y[differ_at]
    perm = np.random.default_rng(seed + 2).permutation(m)
    a = PSGD(loss, config).run(X, y, permutation=perm, random_state=0)
    b = PSGD(loss, config).run(X2, y2, permutation=perm, random_state=0)
    return a, b


class TestAveragingSensitivity:
    """Lemma 10: ||w_bar - w_bar'|| <= sum_t a_t delta_t <= delta_T."""

    @given(
        m=st.integers(10, 30),
        passes=st.integers(1, 3),
        seed=st.integers(0, 500),
        mode=st.sampled_from(["uniform", "suffix"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_averaged_divergence_within_final_bound(self, m, passes, seed, mode):
        loss = LogisticLoss()
        eta = 0.2
        config = PSGDConfig(
            schedule=ConstantSchedule(eta), passes=passes, average=mode,
        )
        a, b = paired_runs(loss, config, m, 5, differ_at=0, seed=seed)
        measured = float(np.linalg.norm(a.model - b.model))
        # Coefficients sum to 1 and delta_t is non-decreasing, so the final
        # bound 2kLeta dominates (Lemma 10's remark).
        final_bound = 2 * passes * 1.0 * eta
        assert measured <= final_bound + 1e-9

    def test_averaged_bound_below_final_bound(self):
        # The per-coefficient Lemma 10 bound is tighter than delta_T for
        # uniform averaging (early iterates have smaller divergence).
        loss = LogisticLoss()
        props = loss.properties()
        m, passes, eta = 20, 2, 0.2
        total = m * passes
        uniform = np.full(total, 1.0 / total)
        averaged = averaged_divergence_bound(
            props, ConstantSchedule(eta), m, passes,
            differing_position=0, coefficients=uniform,
        )
        final = 2 * passes * props.lipschitz * eta
        assert averaged < final

    def test_coefficients_validated(self):
        props = LogisticLoss().properties()
        with pytest.raises(ValueError, match="length"):
            averaged_divergence_bound(
                props, ConstantSchedule(0.1), 10, 1,
                differing_position=0, coefficients=[1.0],
            )
        with pytest.raises(ValueError, match="non-negative"):
            averaged_divergence_bound(
                props, ConstantSchedule(0.1), 3, 1,
                differing_position=0, coefficients=[-1.0, 1.0, 1.0],
            )


class TestFreshPermutationSensitivity:
    """Section 3.2.3: the bound holds for any fixed permutation, hence for
    fresh permutations per pass as well."""

    @given(m=st.integers(10, 30), seed=st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_fresh_permutations_respect_bound(self, m, seed):
        # Simulate fresh permutations by running pass-by-pass with a new
        # shared permutation per pass on both datasets.
        loss = LogisticLoss()
        eta, passes, d = 0.2, 3, 5
        X, y = make_binary_data(m, d, seed=seed)
        X2, y2 = X.copy(), y.copy()
        X2[0] = -X2[0]
        y2[0] = -y2[0]
        rng = np.random.default_rng(seed + 9)
        config = PSGDConfig(schedule=ConstantSchedule(eta), passes=1)
        wa = np.zeros(d)
        wb = np.zeros(d)
        for _ in range(passes):
            perm = rng.permutation(m)
            wa = PSGD(loss, config).run(
                X, y, initial=wa, permutation=perm, random_state=0
            ).model
            wb = PSGD(loss, config).run(
                X2, y2, initial=wb, permutation=perm, random_state=0
            ).model
        bound = 2 * passes * 1.0 * eta
        assert float(np.linalg.norm(wa - wb)) <= bound + 1e-9

    def test_bolton_api_exposes_fresh_permutation(self, medium_data):
        X, y = medium_data
        result = private_convex_psgd(
            X, y, LogisticLoss(), epsilon=1.0, passes=3,
            fresh_permutation_each_pass=True, random_state=0,
        )
        # Same sensitivity as the fixed-permutation variant.
        fixed = private_convex_psgd(
            X, y, LogisticLoss(), epsilon=1.0, passes=3, random_state=0,
        )
        assert result.sensitivity.value == fixed.sensitivity.value

    def test_strongly_convex_fresh_permutation(self, medium_data):
        X, y = medium_data
        result = private_strongly_convex_psgd(
            X, y, LogisticLoss(regularization=0.01), epsilon=1.0, passes=3,
            fresh_permutation_each_pass=True, random_state=0,
        )
        assert np.all(np.isfinite(result.model))


class TestConstrainedSensitivity:
    """Equation (7): projection does not enlarge the divergence."""

    @given(
        m=st.integers(10, 30),
        radius=st.floats(0.05, 2.0),
        seed=st.integers(0, 300),
    )
    @settings(max_examples=15, deadline=None)
    def test_projected_runs_respect_unprojected_bound(self, m, radius, seed):
        loss = LogisticLoss()
        eta, passes = 0.2, 2
        config = PSGDConfig(
            schedule=ConstantSchedule(eta), passes=passes,
            projection=L2BallProjection(radius),
        )
        a, b = paired_runs(loss, config, m, 5, differ_at=0, seed=seed)
        bound = 2 * passes * 1.0 * eta
        assert float(np.linalg.norm(a.model - b.model)) <= bound + 1e-9


class TestNonAdaptivity:
    """Lemma 5's precondition: PSGD's random choices are data-independent."""

    def test_permutation_identical_across_neighbouring_datasets(self):
        m, d = 40, 4
        X, y = make_binary_data(m, d, seed=1)
        X2 = X.copy()
        X2[5] = -X2[5]
        # With the same generator seed, both runs draw the same permutation
        # — the differing example is visited at the same step.
        loss = LogisticLoss()
        config = PSGDConfig(schedule=ConstantSchedule(0.1), passes=1,
                            record_iterates=True)
        a = PSGD(loss, config).run(X, y, random_state=77)
        b = PSGD(loss, config).run(X2, y, random_state=77)
        diffs = [
            t for t, (wa, wb) in enumerate(zip(a.iterates, b.iterates))
            if not np.array_equal(wa, wb)
        ]
        # Divergence starts at exactly one step and persists after it.
        assert diffs
        first = diffs[0]
        assert diffs == list(range(first, m))

    def test_noise_stream_independent_of_data(self, medium_data):
        """Spawned noise generators must not be perturbed by the data —
        two neighbouring runs draw the same noise vector."""
        X, y = medium_data
        X2 = X.copy()
        X2[3] = -X2[3]
        a = private_convex_psgd(X, y, LogisticLoss(), epsilon=1.0, random_state=5)
        b = private_convex_psgd(X2, y, LogisticLoss(), epsilon=1.0, random_state=5)
        noise_a = a.model - a.unreleased_noiseless_model
        noise_b = b.model - b.unreleased_noiseless_model
        np.testing.assert_allclose(noise_a, noise_b, atol=1e-12)
