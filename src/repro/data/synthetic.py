"""Synthetic stand-ins for the paper's evaluation datasets.

The reproduction environment has no network access, so the five benchmark
datasets (MNIST, Protein, Forest Covertype, HIGGS, KDDCup-99) are replaced
by generators that match each dataset's *shape* — size m, dimension d,
class count, and the separability regime that drives the paper's findings
(see the substitution table in DESIGN.md):

* ``mnist_like`` — 10-class, 784-dim Gaussian class clusters, medium size;
  moderately hard, meant to be randomly projected to 50 dims (Section 4.3).
* ``protein_like`` — binary, 74-dim, highly linearly separable ("logistic
  regression fits well to the problem").
* ``covertype_like`` — binary, 54-dim, large m, moderate separability.
* ``higgs_like`` — binary, 28-dim, very large m (the "privacy for free"
  regime of Appendix C).
* ``kddcup_like`` — binary, 41-dim, very large m, nearly separable (network
  intrusion detection is an easy linear task).

Every generator accepts ``scale`` to shrink both splits proportionally so
that tests and benches stay laptop-fast, and reports the paper's original
sizes through :mod:`repro.data.registry`. All features are normalized onto
the unit L2 ball as the paper's preprocessing requires.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset, TrainTestPair
from repro.data.preprocessing import normalize_rows
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_in_range, check_positive_int


def _scaled(size: int, scale: float) -> int:
    scaled = max(20, int(round(size * scale)))
    return scaled


def linearly_separable_binary(
    name: str,
    train_size: int,
    test_size: int,
    dimension: int,
    *,
    margin_noise: float = 0.3,
    flip_fraction: float = 0.02,
    random_state: RandomState = None,
) -> TrainTestPair:
    """The shared binary generator.

    Samples a ground-truth direction ``w*``, Gaussian features normalized
    onto the unit ball, labels ``sign(<w*, x> + margin_noise * N(0,1))``
    with a ``flip_fraction`` of labels flipped outright. ``margin_noise``
    controls how well a linear model can do; ``flip_fraction`` bounds the
    best achievable accuracy from above.
    """
    check_positive_int(train_size, "train_size")
    check_positive_int(test_size, "test_size")
    check_positive_int(dimension, "dimension")
    check_in_range(margin_noise, "margin_noise", 0.0, 10.0)
    check_in_range(flip_fraction, "flip_fraction", 0.0, 0.5, inclusive_high=False)
    rng = as_generator(random_state)

    total = train_size + test_size
    direction = rng.standard_normal(dimension)
    direction /= np.linalg.norm(direction)

    X = rng.standard_normal((total, dimension)) / np.sqrt(dimension)
    X = normalize_rows(X)
    scores = X @ direction
    # margin noise is scaled to the score spread so the difficulty is
    # dimension-independent
    spread = float(np.std(scores)) or 1.0
    noisy = scores + margin_noise * spread * rng.standard_normal(total)
    y = np.where(noisy >= 0.0, 1.0, -1.0)
    if flip_fraction > 0.0:
        flips = rng.random(total) < flip_fraction
        y[flips] = -y[flips]

    train = Dataset(name=f"{name}-train", features=X[:train_size], labels=y[:train_size])
    test = Dataset(name=f"{name}-test", features=X[train_size:], labels=y[train_size:])
    return TrainTestPair(train=train, test=test)


def gaussian_clusters_multiclass(
    name: str,
    train_size: int,
    test_size: int,
    dimension: int,
    num_classes: int,
    *,
    cluster_spread: float = 2.0,
    label_noise: float = 0.0,
    random_state: RandomState = None,
) -> TrainTestPair:
    """Multiclass generator: one Gaussian cluster per class.

    Class means are random unit vectors (nearly orthogonal in high
    dimension); ``cluster_spread`` is the within-class standard deviation
    relative to the mean norm — larger means harder. ``label_noise`` is
    the fraction of points whose label is replaced uniformly at random; it
    caps the achievable accuracy (Gaussian clusters alone remain linearly
    separable in high dimension, which would make every stand-in
    unrealistically easy). Rows are normalized onto the unit ball.
    """
    check_positive_int(num_classes, "num_classes")
    if num_classes < 2:
        raise ValueError("num_classes must be >= 2")
    check_in_range(label_noise, "label_noise", 0.0, 1.0, inclusive_high=False)
    rng = as_generator(random_state)
    total = train_size + test_size

    means = rng.standard_normal((num_classes, dimension))
    means /= np.linalg.norm(means, axis=1, keepdims=True)

    labels = rng.integers(0, num_classes, size=total)
    noise = rng.standard_normal((total, dimension)) * (cluster_spread / np.sqrt(dimension))
    X = normalize_rows(means[labels] + noise)
    if label_noise > 0.0:
        flips = rng.random(total) < label_noise
        labels = np.where(flips, rng.integers(0, num_classes, size=total), labels)
    y = labels.astype(np.float64)

    train = Dataset(
        name=f"{name}-train",
        features=X[:train_size],
        labels=y[:train_size],
        num_classes=num_classes,
    )
    test = Dataset(
        name=f"{name}-test",
        features=X[train_size:],
        labels=y[train_size:],
        num_classes=num_classes,
    )
    return TrainTestPair(train=train, test=test)


# ---------------------------------------------------------------------------
# The five paper datasets. Paper sizes are in repro.data.registry; the
# ``scale`` default keeps generation and training laptop-fast while the
# benches report which m was actually used.
# ---------------------------------------------------------------------------


def mnist_like(
    scale: float = 0.1, seed: RandomState = 0, dimension: int = 784
) -> TrainTestPair:
    """MNIST stand-in: 10 classes, 784 dims, 60000/10000 at scale=1.

    Project to 50 dims with :class:`repro.data.projection.
    GaussianRandomProjection` before private training, as the paper does.
    """
    return gaussian_clusters_multiclass(
        "mnist-like",
        _scaled(60000, scale),
        _scaled(10000, scale),
        dimension,
        num_classes=10,
        cluster_spread=3.0,
        # caps one-vs-rest accuracy near the ~0.85 the paper's noiseless
        # logistic regression reaches on projected MNIST
        label_noise=0.15,
        random_state=seed,
    )


def protein_like(scale: float = 0.1, seed: RandomState = 0) -> TrainTestPair:
    """Protein stand-in: binary, 74 dims, 72876/72875 at scale=1, easy."""
    return linearly_separable_binary(
        "protein-like",
        _scaled(72876, scale),
        _scaled(72875, scale),
        74,
        margin_noise=0.15,
        flip_fraction=0.01,
        random_state=seed,
    )


def covertype_like(scale: float = 0.02, seed: RandomState = 0) -> TrainTestPair:
    """Covertype stand-in: binary, 54 dims, 498010/83002 at scale=1."""
    return linearly_separable_binary(
        "covertype-like",
        _scaled(498010, scale),
        _scaled(83002, scale),
        54,
        margin_noise=0.5,
        flip_fraction=0.08,
        random_state=seed,
    )


def higgs_like(scale: float = 0.01, seed: RandomState = 0) -> TrainTestPair:
    """HIGGS stand-in: binary, 28 dims, 10.5M/0.5M at scale=1.

    The paper's point with HIGGS is that very large m makes the bolt-on
    noise negligible; even at scale=0.01 (105k examples) that regime is
    clearly visible.
    """
    return linearly_separable_binary(
        "higgs-like",
        _scaled(10_500_000, scale),
        _scaled(500_000, scale),
        28,
        margin_noise=0.8,
        flip_fraction=0.15,
        random_state=seed,
    )


def kddcup_like(scale: float = 0.02, seed: RandomState = 0) -> TrainTestPair:
    """KDDCup-99 stand-in: binary, 41 dims, ~4.9M/0.3M at scale=1, easy."""
    return linearly_separable_binary(
        "kddcup-like",
        _scaled(4_898_431, scale),
        _scaled(311_029, scale),
        41,
        margin_noise=0.05,
        flip_fraction=0.005,
        random_state=seed,
    )
