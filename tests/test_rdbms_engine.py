"""Tests for catalog, executor, and UDA layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim.losses import LogisticLoss
from repro.optim.schedules import ConstantSchedule
from repro.rdbms.catalog import Catalog
from repro.rdbms.executor import SeqScan, Shuffle, ShuffleOnce, run_aggregate
from repro.rdbms.storage import BufferPool
from repro.rdbms.uda import AvgUDA, SGDUDA


def make_table(catalog, name="t", m=120, d=6, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(m, d))
    X /= np.maximum(np.linalg.norm(X, axis=1, keepdims=True), 1.0)
    y = np.where(rng.random(m) > 0.5, 1.0, -1.0)
    return catalog.create_table_from_arrays(name, X, y), X, y


class TestCatalog:
    def test_create_and_get(self):
        catalog = Catalog()
        info, X, y = make_table(catalog)
        assert catalog.get("t").num_tuples == 120
        assert "t" in catalog

    def test_duplicate_rejected(self):
        catalog = Catalog()
        make_table(catalog)
        with pytest.raises(ValueError, match="already exists"):
            catalog.create_table_from_arrays("t", np.zeros((1, 2)), np.zeros(1))

    def test_invalid_name(self):
        catalog = Catalog()
        with pytest.raises(ValueError, match="invalid"):
            catalog.create_table_from_arrays("bad name!", np.zeros((1, 2)), np.zeros(1))

    def test_drop(self):
        catalog = Catalog()
        make_table(catalog)
        catalog.drop_table("t")
        assert "t" not in catalog
        with pytest.raises(KeyError):
            catalog.drop_table("t")

    def test_missing_table(self):
        with pytest.raises(KeyError, match="no such table"):
            Catalog().get("ghost")

    def test_table_names_sorted(self):
        catalog = Catalog()
        make_table(catalog, "zeta")
        make_table(catalog, "alpha", seed=1)
        assert catalog.table_names() == ["alpha", "zeta"]


class TestSeqScan:
    def test_yields_all_tuples_in_order(self):
        catalog = Catalog()
        info, X, y = make_table(catalog)
        pool = BufferPool(100)
        rows = list(SeqScan(info, pool))
        assert len(rows) == 120
        np.testing.assert_array_equal(rows[0][0], X[0])
        assert rows[0][1] == y[0]
        np.testing.assert_array_equal(rows[-1][0], X[-1])


class TestShuffle:
    def test_yields_all_tuples_in_permuted_order(self):
        catalog = Catalog()
        info, X, y = make_table(catalog)
        pool = BufferPool(100)
        shuffle = Shuffle(info, pool, random_state=5)
        labels = [label for _, label in shuffle]
        assert len(labels) == 120
        assert sorted(labels) == sorted(y.tolist())

    def test_shuffle_once_replays_same_order(self):
        catalog = Catalog()
        info, X, y = make_table(catalog)
        pool = BufferPool(100)
        shuffle = ShuffleOnce(info, pool, random_state=5)
        first = [tuple(f) for f, _ in shuffle]
        second = [tuple(f) for f, _ in shuffle]
        assert first == second

    def test_reshuffle_changes_order(self):
        catalog = Catalog()
        info, X, y = make_table(catalog)
        pool = BufferPool(100)
        shuffle = ShuffleOnce(info, pool, random_state=5)
        first = [tuple(f) for f, _ in shuffle]
        shuffle.reshuffle()
        second = [tuple(f) for f, _ in shuffle]
        assert first != second
        assert sorted(first) == sorted(second)

    def test_permutation_covers_everything(self):
        catalog = Catalog()
        info, X, y = make_table(catalog)
        pool = BufferPool(100)
        shuffle = ShuffleOnce(info, pool, random_state=1)
        assert sorted(shuffle.permutation.tolist()) == list(range(120))


class TestAvgUDA:
    def test_avg_matches_numpy(self):
        catalog = Catalog()
        info, X, y = make_table(catalog)
        pool = BufferPool(100)
        result = run_aggregate(SeqScan(info, pool), AvgUDA())
        assert result == pytest.approx(float(np.mean(y)))

    def test_empty_aggregate_rejected(self):
        uda = AvgUDA()
        state = uda.initialize()
        with pytest.raises(ValueError, match="zero tuples"):
            uda.terminate(state)


class TestSGDUDA:
    def test_one_epoch_matches_library_psgd(self):
        """The UDA epoch must produce exactly the same model as the plain
        PSGD engine on the same permutation — the substrate and the
        library are the same algorithm."""
        from repro.optim.psgd import run_psgd

        catalog = Catalog()
        info, X, y = make_table(catalog, m=90, d=5, seed=3)
        pool = BufferPool(100)
        loss = LogisticLoss()
        schedule = ConstantSchedule(0.1)

        shuffle = ShuffleOnce(info, pool, random_state=7)
        uda = SGDUDA(loss, schedule, batch_size=10)
        model_uda = run_aggregate(shuffle, uda, dimension=5)

        reference = run_psgd(
            loss, X, y, schedule, passes=1, batch_size=10,
            permutation=shuffle.permutation, random_state=0,
        )
        np.testing.assert_allclose(model_uda, reference.model, atol=1e-12)

    def test_tail_batch_flushed(self):
        catalog = Catalog()
        info, X, y = make_table(catalog, m=95, d=5)
        pool = BufferPool(100)
        uda = SGDUDA(LogisticLoss(), ConstantSchedule(0.1), batch_size=10)
        run_aggregate(SeqScan(info, pool), uda, dimension=5)
        assert uda.updates_applied == 10  # ceil(95/10)

    def test_epoch_chaining_continues_schedule(self):
        catalog = Catalog()
        make_table(catalog, m=20, d=4)
        from repro.optim.schedules import InverseTSchedule

        uda = SGDUDA(LogisticLoss(), InverseTSchedule(1.0), batch_size=5)
        state = uda.initialize(dimension=4, global_step_offset=4)
        assert state.next_step_index == 5

    def test_initialize_needs_model_or_dimension(self):
        uda = SGDUDA(LogisticLoss(), ConstantSchedule(0.1))
        with pytest.raises(ValueError, match="model or a dimension"):
            uda.initialize()

    def test_projection_applied(self):
        from repro.optim.projection import L2BallProjection

        catalog = Catalog()
        info, X, y = make_table(catalog, m=50, d=4)
        pool = BufferPool(100)
        uda = SGDUDA(
            LogisticLoss(), ConstantSchedule(2.0), batch_size=1,
            projection=L2BallProjection(0.1),
        )
        model = run_aggregate(SeqScan(info, pool), uda, dimension=4)
        assert np.linalg.norm(model) <= 0.1 + 1e-9


class TestChunkedExecution:
    """Golden regression: the chunked path is the per-tuple path.

    Same tuples in the same order, same page-request accounting, same
    model — only the delivery granularity (and the speed) differs.
    """

    def _sgd_epoch(self, chunk_size, m=137, d=6, batch_size=10, seed=3):
        catalog = Catalog()
        info, X, y = make_table(catalog, m=m, d=d, seed=seed)
        pool = BufferPool(100)
        shuffle = ShuffleOnce(info, pool, random_state=7)
        uda = SGDUDA(LogisticLoss(0.01), ConstantSchedule(0.1), batch_size=batch_size)
        model = run_aggregate(shuffle, uda, chunk_size=chunk_size, dimension=d)
        return model, shuffle.stats, uda

    @pytest.mark.parametrize("chunk_size", [1, 10, 32, 137, 500])
    def test_sgd_epoch_chunked_equals_per_tuple(self, chunk_size):
        """The golden invariant of the vectorized RDBMS path: fixed seed,
        chunked scan, same final w and same OperatorStats as per-tuple."""
        model_ref, stats_ref, uda_ref = self._sgd_epoch(None)
        model_chunk, stats_chunk, uda_chunk = self._sgd_epoch(chunk_size)
        np.testing.assert_allclose(model_chunk, model_ref, rtol=0, atol=1e-12)
        assert stats_chunk.pages_requested == stats_ref.pages_requested
        assert stats_chunk.tuples_produced == stats_ref.tuples_produced
        assert uda_chunk.updates_applied == uda_ref.updates_applied

    def test_seqscan_chunks_reassemble_table(self):
        catalog = Catalog()
        info, X, y = make_table(catalog, m=120, d=6)
        pool = BufferPool(100)
        scan = SeqScan(info, pool)
        chunks = list(scan.scan_chunks(37))
        np.testing.assert_array_equal(np.vstack([c[0] for c in chunks]), X)
        np.testing.assert_array_equal(np.concatenate([c[1] for c in chunks]), y)
        assert all(c[0].shape[0] == 37 for c in chunks[:-1])
        # Counters match a per-tuple SeqScan of the same table.
        reference = SeqScan(info, BufferPool(100))
        list(reference)
        assert scan.stats.pages_requested == reference.stats.pages_requested
        assert scan.stats.tuples_produced == reference.stats.tuples_produced

    def test_shuffle_once_chunks_replay_permutation(self):
        catalog = Catalog()
        info, X, y = make_table(catalog)
        pool = BufferPool(100)
        shuffle = ShuffleOnce(info, pool, random_state=5)
        per_tuple = np.vstack([f for f, _ in shuffle])
        chunked = np.vstack([c[0] for c in shuffle.scan_chunks(17)])
        np.testing.assert_array_equal(chunked, per_tuple)

    def test_shuffle_chunks_cover_everything(self):
        catalog = Catalog()
        info, X, y = make_table(catalog)
        pool = BufferPool(100)
        shuffle = Shuffle(info, pool, random_state=5)
        labels = np.concatenate([c[1] for c in shuffle.scan_chunks(13)])
        assert sorted(labels.tolist()) == sorted(y.tolist())
        assert shuffle.stats.pages_requested == 120

    def test_avg_uda_chunked_matches_scalar(self):
        catalog = Catalog()
        info, X, y = make_table(catalog)
        pool = BufferPool(100)
        chunked = run_aggregate(SeqScan(info, pool), AvgUDA(), chunk_size=11)
        assert chunked == pytest.approx(float(np.mean(y)))

    def test_default_transition_batch_falls_back_to_transition(self):
        """A UDA that only defines transition (the bismarck.py baseline
        situation) must work unchanged on the chunked stream."""

        class CountingMaxUDA(AvgUDA):
            transitions = 0

            def transition(self, state, features, label):
                type(self).transitions += 1
                return super().transition(state, features, label)

            # No transition_batch override: AvgUDA's would be inherited, so
            # restore the base UDA row-loop default explicitly.
            def transition_batch(self, state, features, labels):
                from repro.rdbms.uda import UDA

                return UDA.transition_batch(self, state, features, labels)

        catalog = Catalog()
        info, X, y = make_table(catalog)
        pool = BufferPool(100)
        result = run_aggregate(SeqScan(info, pool), CountingMaxUDA(), chunk_size=50)
        assert result == pytest.approx(float(np.mean(y)))
        assert CountingMaxUDA.transitions == 120

    def test_invalid_chunk_size_rejected(self):
        catalog = Catalog()
        info, X, y = make_table(catalog)
        pool = BufferPool(100)
        with pytest.raises(ValueError):
            list(SeqScan(info, pool).scan_chunks(0))

    def test_noisy_uda_chunked_equals_per_tuple(self):
        """The white-box baselines ride the chunked engine unchanged: the
        per-mini-batch noise hook fires at the same steps with the same
        draws."""
        from repro.rdbms.bismarck import NoisySGDUDA

        def run(chunk_size):
            catalog = Catalog()
            info, X, y = make_table(catalog, m=90, d=5, seed=3)
            pool = BufferPool(100)
            noise_rng = np.random.default_rng(21)

            def noise_sampler(step, dimension):
                return noise_rng.normal(0.0, 0.01, size=dimension)

            uda = NoisySGDUDA(
                LogisticLoss(), ConstantSchedule(0.1), noise_sampler, batch_size=10
            )
            shuffle = ShuffleOnce(info, pool, random_state=7)
            model = run_aggregate(shuffle, uda, chunk_size=chunk_size, dimension=5)
            return model, uda.noise_draws

        model_ref, draws_ref = run(None)
        model_chunk, draws_chunk = run(32)
        np.testing.assert_allclose(model_chunk, model_ref, rtol=0, atol=1e-12)
        assert draws_chunk == draws_ref == 9


class TestVirtualHeapChunkGather:
    """Chunked shuffled scans of virtual tables: each page synthesized at
    most once per chunk, with buffer-pool accounting path-invariant."""

    D = 200  # 1608-byte tuples -> 5 tuples per page: many pages, small m

    def _make_virtual(self, m):
        from repro.rdbms.storage import VirtualHeapFile

        synth_calls = {}

        def generator(page_id, count, dimension):
            synth_calls[page_id] = synth_calls.get(page_id, 0) + 1
            rng = np.random.default_rng(page_id)
            return (
                rng.normal(size=(count, dimension)),
                np.where(rng.random(count) > 0.5, 1.0, -1.0),
            )

        return VirtualHeapFile(m, self.D, generator), synth_calls

    def _thrashing_permutation(self, m, per_page):
        # Visit pages round-robin (tuple 0 of every page, then tuple 1 of
        # every page, ...): with a small pool every revisit is a miss.
        ids = np.arange(m).reshape(-1, per_page).T.ravel()
        return ids

    # chunk_size 50 takes the sparse (per-tuple copy) gather branch,
    # 100 the dense (fancy-indexed) one; the memo must hold in both.
    @pytest.mark.parametrize("chunk_size", [50, 100])
    def test_synthesis_once_per_chunk_and_counters_invariant(self, chunk_size):
        from repro.rdbms.storage import tuples_per_page

        catalog = Catalog()
        m = 100
        heap, synth_calls = self._make_virtual(m)
        info = catalog.create_table("virtual", heap)
        per_page = tuples_per_page(self.D)
        perm = self._thrashing_permutation(m, per_page)

        # Per-tuple reference: counters + streamed values.
        pool_ref = BufferPool(3)
        shuffle_ref = ShuffleOnce(info, pool_ref)
        shuffle_ref._permutation = perm.copy()
        ref_rows = [(features.copy(), label) for features, label in shuffle_ref]
        ref_stats = (pool_ref.stats.page_reads, pool_ref.stats.cache_hits,
                     pool_ref.stats.cache_misses, pool_ref.stats.evictions)
        ref_synth = dict(synth_calls)
        assert sum(ref_synth.values()) > heap.num_pages  # thrash regime

        # Chunked path on a fresh pool: identical accounting, bounded
        # synthesis.
        synth_calls.clear()
        pool = BufferPool(3)
        shuffle = ShuffleOnce(info, pool)
        shuffle._permutation = perm.copy()
        blocks = list(shuffle.scan_chunks(chunk_size))
        chunk_stats = (pool.stats.page_reads, pool.stats.cache_hits,
                       pool.stats.cache_misses, pool.stats.evictions)
        assert chunk_stats == ref_stats

        # Values identical to the per-tuple stream.
        X_chunked = np.vstack([X_block for X_block, _ in blocks])
        y_chunked = np.concatenate([y_block for _, y_block in blocks])
        np.testing.assert_array_equal(
            X_chunked, np.vstack([row for row, _ in ref_rows])
        )
        np.testing.assert_array_equal(
            y_chunked, np.array([label for _, label in ref_rows])
        )

        # The satellite claim: at most one synthesis per (chunk, page) —
        # far below the per-tuple path's miss-driven synthesis count.
        chunks = -(-m // chunk_size)
        assert sum(synth_calls.values()) <= chunks * heap.num_pages
        assert sum(synth_calls.values()) < sum(ref_synth.values())
        assert max(synth_calls.values()) <= chunks

    def test_materialized_tables_unaffected(self):
        """The memo is a pure optimization for materialized heaps too:
        chunked output and counters unchanged (golden contract)."""
        catalog = Catalog()
        info, X, y = make_table(catalog, m=120, d=6, seed=9)
        pool_a, pool_b = BufferPool(2), BufferPool(2)
        sh_a = ShuffleOnce(info, pool_a, random_state=3)
        perm = sh_a.permutation
        sh_b = ShuffleOnce(info, pool_b)
        sh_b._permutation = perm.copy()
        rows = [(features.copy(), label) for features, label in sh_a]
        blocks = list(sh_b.scan_chunks(17))
        np.testing.assert_array_equal(
            np.vstack([X_block for X_block, _ in blocks]),
            np.vstack([row for row, _ in rows]),
        )
        assert (
            pool_a.stats.page_reads,
            pool_a.stats.cache_hits,
            pool_a.stats.cache_misses,
            pool_a.stats.evictions,
        ) == (
            pool_b.stats.page_reads,
            pool_b.stats.cache_hits,
            pool_b.stats.cache_misses,
            pool_b.stats.evictions,
        )
