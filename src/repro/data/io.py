"""Dataset persistence: NPZ (lossless) and CSV (interchange).

A reproduction package gets used with the reader's own data; these helpers
load external matrices into :class:`~repro.data.dataset.Dataset` objects
with the validation and normalization the privacy analysis needs, and save
generated stand-ins for reuse across runs.

CSV layout: one row per example, features in all columns except the last,
the label in the last column (``{-1, +1}`` or class ids).
"""

from __future__ import annotations

import csv
import pathlib
from typing import Union

import numpy as np

from repro.data.dataset import Dataset
from repro.data.preprocessing import max_row_norm, normalize_rows

PathLike = Union[str, pathlib.Path]


def save_npz(dataset: Dataset, path: PathLike) -> None:
    """Write a dataset to a compressed ``.npz`` archive."""
    np.savez_compressed(
        pathlib.Path(path),
        features=dataset.features,
        labels=dataset.labels,
        name=np.array(dataset.name),
        num_classes=np.array(dataset.num_classes),
    )


def load_npz(path: PathLike) -> Dataset:
    """Read a dataset written by :func:`save_npz`."""
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as archive:
        missing = {"features", "labels"} - set(archive.files)
        if missing:
            raise ValueError(f"{path}: missing arrays {sorted(missing)}")
        return Dataset(
            name=str(archive["name"]) if "name" in archive.files else path.stem,
            features=archive["features"],
            labels=archive["labels"],
            num_classes=(
                int(archive["num_classes"]) if "num_classes" in archive.files else 2
            ),
        )


def save_csv(dataset: Dataset, path: PathLike) -> None:
    """Write features-then-label rows; no header."""
    with open(pathlib.Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        for row, label in zip(dataset.features, dataset.labels):
            writer.writerow([*(repr(float(v)) for v in row), repr(float(label))])


def load_csv(
    path: PathLike,
    name: str | None = None,
    num_classes: int = 2,
    normalize: bool = True,
) -> Dataset:
    """Read a features-then-label CSV into a dataset.

    ``normalize=True`` (default) scales rows onto the unit L2 ball — the
    preprocessing the privacy analysis assumes. Pass ``False`` only when
    the file is known to be normalized already; training APIs will still
    re-check.
    """
    path = pathlib.Path(path)
    rows: list[list[float]] = []
    with open(path, newline="") as handle:
        for line_number, record in enumerate(csv.reader(handle), start=1):
            if not record:
                continue
            try:
                rows.append([float(value) for value in record])
            except ValueError as exc:
                raise ValueError(f"{path}:{line_number}: non-numeric value") from exc
    if not rows:
        raise ValueError(f"{path}: no data rows")
    widths = {len(row) for row in rows}
    if len(widths) != 1:
        raise ValueError(f"{path}: inconsistent column counts {sorted(widths)}")
    if widths.pop() < 2:
        raise ValueError(f"{path}: need at least one feature column plus a label")
    matrix = np.asarray(rows, dtype=np.float64)
    features, labels = matrix[:, :-1], matrix[:, -1]
    if normalize and max_row_norm(features) > 1.0:
        features = normalize_rows(features)
    return Dataset(
        name=name if name is not None else path.stem,
        features=features,
        labels=labels,
        num_classes=num_classes,
    )
