"""The in-RDBMS analytics substrate — a miniature Bismarck-on-PostgreSQL.

Layers (bottom to top):

* :mod:`repro.rdbms.storage` — slotted pages, heap files (materialized and
  virtual), LRU buffer pool with I/O counters;
* :mod:`repro.rdbms.catalog` — table namespace;
* :mod:`repro.rdbms.executor` — sequential scan, ``ORDER BY RANDOM()``
  shuffle, aggregate evaluation;
* :mod:`repro.rdbms.uda` — the initialize/transition/terminate aggregate
  contract, with AVG and the Bismarck SGD epoch;
* :mod:`repro.rdbms.bismarck` — the front-end controller and the three
  integration styles of Figure 1 (noiseless / bolt-on / white-box noisy);
* :mod:`repro.rdbms.cost_model` — counters-to-seconds for the runtime and
  scalability figures;
* :mod:`repro.rdbms.synthesizer` — the Figure 2 binary-data synthesizer.
"""

from repro.rdbms.bismarck import (
    BismarckSession,
    EpochReport,
    MultiTrainingReport,
    NoisySGDUDA,
    TrainingReport,
    integration_report,
)
from repro.rdbms.catalog import Catalog, TableInfo
from repro.rdbms.cost_model import (
    CostConstants,
    CostModel,
    RuntimeBreakdown,
    WorkCounters,
)
from repro.rdbms.executor import (
    SeqScan,
    Shuffle,
    ShuffleOnce,
    run_aggregate,
    run_aggregates,
)
from repro.rdbms.storage import (
    PAGE_SIZE_BYTES,
    BufferPool,
    BufferPoolStats,
    HeapFile,
    MaterializedHeapFile,
    Page,
    VirtualHeapFile,
    tuple_width_bytes,
    tuples_per_page,
)
from repro.rdbms.synthesizer import (
    analytic_counters,
    dataset_size_bytes,
    dataset_size_gb,
    synthesize_heap,
)
from repro.rdbms.uda import (
    UDA,
    AvgUDA,
    MultiSGDState,
    MultiSGDUDA,
    SGDState,
    SGDUDA,
)

__all__ = [
    "PAGE_SIZE_BYTES",
    "Page",
    "HeapFile",
    "MaterializedHeapFile",
    "VirtualHeapFile",
    "BufferPool",
    "BufferPoolStats",
    "tuple_width_bytes",
    "tuples_per_page",
    "Catalog",
    "TableInfo",
    "SeqScan",
    "Shuffle",
    "ShuffleOnce",
    "run_aggregate",
    "run_aggregates",
    "UDA",
    "AvgUDA",
    "MultiSGDState",
    "MultiSGDUDA",
    "MultiTrainingReport",
    "SGDUDA",
    "SGDState",
    "BismarckSession",
    "NoisySGDUDA",
    "TrainingReport",
    "EpochReport",
    "integration_report",
    "CostModel",
    "CostConstants",
    "WorkCounters",
    "RuntimeBreakdown",
    "synthesize_heap",
    "analytic_counters",
    "dataset_size_bytes",
    "dataset_size_gb",
]
