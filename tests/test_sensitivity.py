"""Tests for the L2-sensitivity closed forms — the paper's core claim.

Three layers of verification:

1. unit tests of the formulas against hand-computed values;
2. closed form vs the executable growth recursion of
   :mod:`repro.optim.growth` (the closed form must dominate it);
3. **empirical**: run PSGD twice with *identical* permutations on datasets
   differing in one example and check ``||w - w'|| <= Delta_2`` — the
   literal statement of ``sup_S~S' sup_r delta_T <= Delta``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sensitivity import (
    convex_constant_step,
    convex_decreasing_step,
    convex_decreasing_step_simplified,
    convex_square_root_step,
    effective_minibatch_divisor,
    sensitivity_for_schedule,
    strongly_convex_constant_step,
    strongly_convex_decreasing_step,
)
from repro.optim.growth import divergence_bound, worst_case_divergence_bound
from repro.optim.losses import LogisticLoss, LossProperties
from repro.optim.psgd import run_psgd
from repro.optim.schedules import (
    CappedInverseTSchedule,
    ConstantSchedule,
    DecreasingSchedule,
    InverseSqrtTSchedule,
    SquareRootSchedule,
)
from tests.conftest import make_binary_data


def paired_divergence(
    loss,
    schedule,
    m: int,
    d: int,
    passes: int,
    batch_size: int = 1,
    differ_at: int = 0,
    seed: int = 0,
    projection=None,
    execution: str = "vectorized",
) -> float:
    """||w_T - w'_T|| of two PSGD runs on neighbouring datasets sharing a
    permutation — the quantity the sensitivity bounds cap.

    ``execution`` selects the engine path; the bounds are statements about
    the algorithm, so they must hold (and be observed to hold) on both.
    """
    X, y = make_binary_data(m, d, seed=seed)
    X2 = X.copy()
    y2 = y.copy()
    rng = np.random.default_rng(seed + 1)
    replacement = rng.standard_normal(d)
    replacement /= max(np.linalg.norm(replacement), 1.0)
    X2[differ_at] = replacement
    y2[differ_at] = -y[differ_at]

    perm = np.random.default_rng(seed + 2).permutation(m)
    a = run_psgd(
        loss, X, y, schedule, passes=passes, batch_size=batch_size,
        permutation=perm, projection=projection, random_state=0,
        execution=execution,
    )
    b = run_psgd(
        loss, X2, y2, schedule, passes=passes, batch_size=batch_size,
        permutation=perm, projection=projection, random_state=0,
        execution=execution,
    )
    return float(np.linalg.norm(a.model - b.model))


class TestConvexConstantStep:
    def test_corollary1_formula(self):
        # Delta = 2 k L eta
        props = LogisticLoss().properties()
        bound = convex_constant_step(props, eta=0.1, passes=5)
        assert bound.value == pytest.approx(2 * 5 * 1.0 * 0.1)

    def test_minibatch_divides_by_b(self):
        props = LogisticLoss().properties()
        single = convex_constant_step(props, eta=0.1, passes=5, batch_size=1)
        batched = convex_constant_step(props, eta=0.1, passes=5, batch_size=10)
        assert batched.value == pytest.approx(single.value / 10)

    def test_step_size_precondition(self):
        props = LogisticLoss().properties()  # beta = 1
        with pytest.raises(ValueError, match="2/beta"):
            convex_constant_step(props, eta=2.5, passes=1)

    def test_matches_growth_recursion(self):
        props = LogisticLoss().properties()
        eta, m, k = 0.05, 20, 3
        closed = convex_constant_step(props, eta, k).value
        recursion = worst_case_divergence_bound(
            props, ConstantSchedule(eta), m, k
        )
        assert closed == pytest.approx(recursion, rel=1e-9)

    @given(
        m=st.integers(10, 40),
        passes=st.integers(1, 3),
        eta=st.floats(0.01, 0.5),
        seed=st.integers(0, 10_000),
        differ_at=st.integers(0, 9),
    )
    @settings(max_examples=25, deadline=None)
    def test_empirical_divergence_within_bound(self, m, passes, eta, seed, differ_at):
        loss = LogisticLoss()
        bound = convex_constant_step(loss.properties(), eta, passes).value
        measured = paired_divergence(
            loss, ConstantSchedule(eta), m, 5, passes, differ_at=differ_at, seed=seed
        )
        assert measured <= bound + 1e-9

    @given(
        m=st.integers(12, 36),
        batch=st.integers(2, 6),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_empirical_minibatch_divergence_within_bound(self, m, batch, seed):
        # The /b refinement is only valid with the worst-case tail divisor
        # (min(b, m mod b)); hypothesis found m=13, b=4 violating a plain
        # /b bound — see TestTailBatchDivisor for the regression.
        loss = LogisticLoss()
        eta, passes = 0.2, 2
        divisor = effective_minibatch_divisor(m, batch)
        bound = convex_constant_step(loss.properties(), eta, passes, divisor).value
        measured = paired_divergence(
            loss, ConstantSchedule(eta), m, 4, passes, batch_size=batch, seed=seed
        )
        assert measured <= bound + 1e-9


class TestConvexDecreasingStep:
    def test_exact_below_simplified(self):
        props = LogisticLoss().properties()
        for k in (1, 2, 5, 10):
            exact = convex_decreasing_step(props, m=1000, passes=k).value
            simplified = convex_decreasing_step_simplified(props, m=1000, passes=k)
            assert exact <= simplified * (1 + 1e-9)

    def test_single_pass_value(self):
        # k = 1: 2L * eta_1 with eta_1 = 2/(beta(1 + m^c))
        props = LogisticLoss().properties()
        m, c = 100, 0.5
        bound = convex_decreasing_step(props, m, passes=1, c=c)
        assert bound.value == pytest.approx(2 * 2.0 / (1.0 * (1 + m**c)))

    def test_dispatch_through_schedule(self):
        props = LogisticLoss().properties()
        schedule = DecreasingSchedule(beta=1.0, m=200, c=0.5)
        bound = sensitivity_for_schedule(props, schedule, m=200, passes=2)
        assert bound.regime.startswith("convex-decreasing")

    @given(m=st.integers(10, 40), passes=st.integers(1, 3), seed=st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_empirical_divergence_within_bound(self, m, passes, seed):
        loss = LogisticLoss()
        props = loss.properties()
        schedule = DecreasingSchedule(beta=props.smoothness, m=m, c=0.5)
        bound = convex_decreasing_step(props, m, passes).value
        measured = paired_divergence(loss, schedule, m, 5, passes, seed=seed)
        assert measured <= bound + 1e-9


class TestConvexSquareRootStep:
    def test_corollary3_formula(self):
        props = LogisticLoss().properties()
        m, k, c = 100, 3, 0.5
        expected = (4 * 1.0 / 1.0) * sum(
            1.0 / (np.sqrt(j * m + 1) + m**c) for j in range(k)
        )
        assert convex_square_root_step(props, m, k, c).value == pytest.approx(expected)

    @given(m=st.integers(10, 40), passes=st.integers(1, 3), seed=st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_empirical_divergence_within_bound(self, m, passes, seed):
        loss = LogisticLoss()
        props = loss.properties()
        schedule = SquareRootSchedule(beta=props.smoothness, m=m, c=0.5)
        bound = convex_square_root_step(props, m, passes).value
        measured = paired_divergence(loss, schedule, m, 5, passes, seed=seed)
        assert measured <= bound + 1e-9


class TestStronglyConvexConstantStep:
    def test_lemma7_formula(self):
        props = LogisticLoss(regularization=0.1).properties(radius=5.0)
        eta, m = 0.5 / props.smoothness, 50
        bound = strongly_convex_constant_step(props, eta, m, passes=3)
        contraction = 1 - eta * props.strong_convexity
        expected = 2 * eta * props.lipschitz / (1 - contraction**m)
        assert bound.value == pytest.approx(expected)

    def test_pass_independent(self):
        props = LogisticLoss(regularization=0.1).properties(radius=5.0)
        eta = 0.5 / props.smoothness
        b1 = strongly_convex_constant_step(props, eta, 50, passes=1)
        b9 = strongly_convex_constant_step(props, eta, 50, passes=9)
        assert b1.value == pytest.approx(b9.value)

    def test_requires_strong_convexity(self):
        with pytest.raises(ValueError, match="strongly convex"):
            strongly_convex_constant_step(
                LogisticLoss().properties(), eta=0.1, m=10, passes=1
            )

    def test_step_size_precondition(self):
        props = LogisticLoss(regularization=0.1).properties(radius=5.0)
        with pytest.raises(ValueError, match="1/beta"):
            strongly_convex_constant_step(
                props, eta=2.0 / props.smoothness, m=10, passes=1
            )

    @given(m=st.integers(10, 30), passes=st.integers(1, 4), seed=st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_empirical_divergence_within_bound(self, m, passes, seed):
        lam = 0.2
        loss = LogisticLoss(regularization=lam)
        props = loss.properties(radius=1.0 / lam)
        eta = 1.0 / props.smoothness
        bound = strongly_convex_constant_step(props, eta, m, passes).value
        from repro.optim.projection import L2BallProjection

        measured = paired_divergence(
            loss, ConstantSchedule(eta), m, 5, passes, seed=seed,
            projection=L2BallProjection(1.0 / lam),
        )
        assert measured <= bound + 1e-9


class TestStronglyConvexDecreasingStep:
    def test_lemma8_formula(self):
        # Delta = 2L/(gamma m)
        props = LogisticLoss(regularization=0.01).properties(radius=100.0)
        bound = strongly_convex_decreasing_step(props, m=1000, passes=7)
        assert bound.value == pytest.approx(
            2 * props.lipschitz / (props.strong_convexity * 1000)
        )

    def test_pass_independence_is_the_headline(self):
        props = LogisticLoss(regularization=0.01).properties(radius=100.0)
        values = {
            strongly_convex_decreasing_step(props, 1000, k).value for k in (1, 5, 20)
        }
        assert len(values) == 1

    def test_contrast_with_convex_case(self):
        # Theorems 4 vs 5: convex sensitivity grows with k, strongly convex
        # does not.
        convex_props = LogisticLoss().properties()
        sc_props = LogisticLoss(regularization=0.01).properties(radius=100.0)
        convex_1 = convex_constant_step(convex_props, eta=0.1, passes=1).value
        convex_9 = convex_constant_step(convex_props, eta=0.1, passes=9).value
        assert convex_9 == pytest.approx(9 * convex_1)
        sc_1 = strongly_convex_decreasing_step(sc_props, 1000, 1).value
        sc_9 = strongly_convex_decreasing_step(sc_props, 1000, 9).value
        assert sc_9 == sc_1

    @given(
        m=st.integers(10, 30),
        passes=st.integers(1, 4),
        lam=st.floats(0.05, 0.5),
        seed=st.integers(0, 500),
        differ_at=st.integers(0, 9),
    )
    @settings(max_examples=25, deadline=None)
    def test_empirical_divergence_within_bound(self, m, passes, lam, seed, differ_at):
        loss = LogisticLoss(regularization=lam)
        radius = 1.0 / lam
        props = loss.properties(radius=radius)
        schedule = CappedInverseTSchedule(props.smoothness, props.strong_convexity)
        bound = strongly_convex_decreasing_step(props, m, passes).value
        from repro.optim.projection import L2BallProjection

        measured = paired_divergence(
            loss, schedule, m, 5, passes, differ_at=differ_at, seed=seed,
            projection=L2BallProjection(radius),
        )
        assert measured <= bound + 1e-9


class TestDispatch:
    def test_constant_convex(self):
        props = LogisticLoss().properties()
        bound = sensitivity_for_schedule(props, ConstantSchedule(0.1), 100, 2)
        assert bound.regime.startswith("convex-constant")

    def test_constant_strongly_convex(self):
        props = LogisticLoss(regularization=0.1).properties(radius=10.0)
        eta = 0.5 / props.smoothness
        bound = sensitivity_for_schedule(props, ConstantSchedule(eta), 100, 2)
        assert bound.regime.startswith("strongly-convex-constant")

    def test_capped_schedule_requires_strong_convexity(self):
        props = LogisticLoss().properties()
        with pytest.raises(ValueError, match="strongly convex"):
            sensitivity_for_schedule(
                props, CappedInverseTSchedule(1.0, 0.1), 100, 2
            )

    def test_unknown_schedule_rejected(self):
        props = LogisticLoss().properties()
        with pytest.raises(TypeError, match="no sensitivity result"):
            sensitivity_for_schedule(props, InverseSqrtTSchedule(), 100, 2)

    def test_decreasing_rejects_strongly_convex(self):
        props = LogisticLoss(regularization=0.1).properties(radius=10.0)
        with pytest.raises(ValueError, match="convex case only"):
            sensitivity_for_schedule(
                props, DecreasingSchedule(props.smoothness, 100), 100, 2
            )

    def test_averaging_scales_bound(self):
        props = LogisticLoss().properties()
        bound = convex_constant_step(props, eta=0.1, passes=2)
        assert bound.scaled_by_averaging(1.0).value == pytest.approx(bound.value)
        assert bound.scaled_by_averaging(0.5).value == pytest.approx(bound.value / 2)


class TestGrowthRecursionConsistency:
    """The closed forms must dominate the exact per-position recursion."""

    def test_convex_positions(self):
        props = LogisticLoss().properties()
        eta, m, k = 0.1, 12, 2
        closed = convex_constant_step(props, eta, k).value
        for position in range(m):
            recursion = divergence_bound(
                props, ConstantSchedule(eta), m, k, position
            )
            assert recursion <= closed + 1e-12

    def test_strongly_convex_positions(self):
        lam = 0.3
        props = LogisticLoss(regularization=lam).properties(radius=1 / lam)
        schedule = CappedInverseTSchedule(props.smoothness, props.strong_convexity)
        m, k = 12, 3
        closed = strongly_convex_decreasing_step(props, m, k).value
        for position in range(m):
            recursion = divergence_bound(props, schedule, m, k, position)
            assert recursion <= closed + 1e-12

    def test_minibatch_recursion_scales(self):
        props = LogisticLoss().properties()
        eta, m, k = 0.1, 12, 1
        full = worst_case_divergence_bound(props, ConstantSchedule(eta), m, k, 1)
        batched = worst_case_divergence_bound(props, ConstantSchedule(eta), m, k, 3)
        assert batched == pytest.approx(full / 3)


class TestTailBatchDivisor:
    """Regression: the mini-batch refinement must use the worst-case tail
    divisor when b does not divide m.

    Hypothesis found (m=13, b=4, seed=94): the tail batch holds one
    example, which a mean-gradient step weights 1/1 rather than 1/4, and
    the measured divergence 0.252 exceeded the optimistic 2*k*L*eta/b = 0.2
    bound. A bound that under-reports sensitivity is a silent privacy
    violation, so the dispatch and growth recursion now divide by
    ``min(b, m mod b)``.
    """

    def test_effective_divisor_cases(self):
        assert effective_minibatch_divisor(12, 4) == 4  # divisible: b
        assert effective_minibatch_divisor(13, 4) == 1  # tail of 1
        assert effective_minibatch_divisor(14, 4) == 2  # tail of 2
        assert effective_minibatch_divisor(15, 4) == 3  # tail of 3
        assert effective_minibatch_divisor(3, 10) == 3  # b > m: one batch of m
        assert effective_minibatch_divisor(10, 10) == 10

    def test_dispatch_applies_tail_divisor(self):
        props = LogisticLoss().properties()
        eta, passes = 0.2, 2
        divisible = sensitivity_for_schedule(
            props, ConstantSchedule(eta), 12, passes, batch_size=4
        )
        tail = sensitivity_for_schedule(
            props, ConstantSchedule(eta), 13, passes, batch_size=4
        )
        assert divisible.value == pytest.approx(2 * passes * eta / 4)
        assert tail.value == pytest.approx(2 * passes * eta / 1)

    def test_hypothesis_falsifying_example_within_corrected_bound(self):
        m, batch, seed = 13, 4, 94
        loss = LogisticLoss()
        eta, passes = 0.2, 2
        bound = sensitivity_for_schedule(
            loss.properties(), ConstantSchedule(eta), m, passes, batch_size=batch
        ).value
        for execution in ("scalar", "vectorized"):
            measured = paired_divergence(
                loss, ConstantSchedule(eta), m, 4, passes, batch_size=batch,
                seed=seed, execution=execution,
            )
            assert measured <= bound + 1e-9

    def test_growth_recursion_tail_position_dominates(self):
        """The recursion's worst case over positions must now be the tail
        position, and the corrected closed form must dominate it."""
        props = LogisticLoss().properties()
        eta, m, k, batch = 0.2, 13, 2, 4
        recursion = worst_case_divergence_bound(
            props, ConstantSchedule(eta), m, k, batch
        )
        divisor = effective_minibatch_divisor(m, batch)
        closed = convex_constant_step(props, eta, k, divisor).value
        assert recursion <= closed + 1e-12
        # And the tail genuinely dominates a full batch's position.
        tail_position = -(-m // batch) - 1
        tail = divergence_bound(
            props, ConstantSchedule(eta), m, k, tail_position, batch
        )
        full = divergence_bound(props, ConstantSchedule(eta), m, k, 0, batch)
        assert tail > full


class TestBoundMonotonicity:
    """Property tests: the closed-form bounds are monotone in L and eta.

    Increasing the Lipschitz constant (gradients can be bigger) or the
    step size (each update moves further) can only widen the worst-case
    divergence; a dispatch path that violated this would be under-reporting
    sensitivity somewhere.
    """

    @given(
        l_small=st.floats(0.1, 5.0),
        l_factor=st.floats(1.0, 4.0),
        eta=st.floats(0.01, 1.9),
        passes=st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_convex_dispatch_monotone_in_lipschitz(self, l_small, l_factor, eta, passes):
        small = LossProperties(lipschitz=l_small, smoothness=1.0, strong_convexity=0.0)
        large = LossProperties(
            lipschitz=l_small * l_factor, smoothness=1.0, strong_convexity=0.0
        )
        schedule = ConstantSchedule(eta)
        bound_small = sensitivity_for_schedule(small, schedule, 50, passes).value
        bound_large = sensitivity_for_schedule(large, schedule, 50, passes).value
        assert bound_large >= bound_small

    @given(
        eta_small=st.floats(0.01, 0.9),
        eta_factor=st.floats(1.0, 2.0),
        passes=st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_convex_dispatch_monotone_in_eta(self, eta_small, eta_factor, passes):
        props = LogisticLoss().properties()
        eta_large = min(eta_small * eta_factor, 2.0 / props.smoothness)
        bound_small = sensitivity_for_schedule(
            props, ConstantSchedule(eta_small), 50, passes
        ).value
        bound_large = sensitivity_for_schedule(
            props, ConstantSchedule(eta_large), 50, passes
        ).value
        assert bound_large >= bound_small

    @given(
        l_small=st.floats(0.1, 5.0),
        l_factor=st.floats(1.0, 4.0),
        gamma=st.floats(0.05, 0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_strongly_convex_monotone_in_lipschitz(self, l_small, l_factor, gamma):
        beta = 1.0 + gamma
        small = LossProperties(lipschitz=l_small, smoothness=beta, strong_convexity=gamma)
        large = LossProperties(
            lipschitz=l_small * l_factor, smoothness=beta, strong_convexity=gamma
        )
        eta = 0.5 / beta
        bound_small = strongly_convex_constant_step(small, eta, 30, passes=2).value
        bound_large = strongly_convex_constant_step(large, eta, 30, passes=2).value
        assert bound_large >= bound_small

    @given(
        eta_small=st.floats(0.01, 0.45),
        eta_factor=st.floats(1.0, 2.0),
        gamma=st.floats(0.05, 0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_strongly_convex_monotone_in_eta(self, eta_small, eta_factor, gamma):
        beta = 1.0 + gamma
        props = LossProperties(lipschitz=1.0, smoothness=beta, strong_convexity=gamma)
        eta_small = eta_small / beta
        eta_large = min(eta_small * eta_factor, 1.0 / beta)
        bound_small = strongly_convex_constant_step(props, eta_small, 30, passes=2).value
        bound_large = strongly_convex_constant_step(props, eta_large, 30, passes=2).value
        assert bound_large >= bound_small + (-1e-12)


class TestEngineInvariance:
    """The sensitivity claim is engine-independent: the measured divergence
    of neighbouring fixed-permutation runs stays within Delta_2 on *both*
    execution paths, and the two paths measure (essentially) the same
    divergence."""

    @given(
        m=st.integers(10, 36),
        passes=st.integers(1, 3),
        eta=st.floats(0.01, 0.5),
        batch=st.integers(1, 5),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_convex_bound_holds_on_both_paths(self, m, passes, eta, batch, seed):
        loss = LogisticLoss()
        divisor = effective_minibatch_divisor(m, batch)
        bound = convex_constant_step(loss.properties(), eta, passes, divisor).value
        measured = {
            execution: paired_divergence(
                loss, ConstantSchedule(eta), m, 5, passes, batch_size=batch,
                seed=seed, execution=execution,
            )
            for execution in ("scalar", "vectorized")
        }
        assert measured["scalar"] <= bound + 1e-9
        assert measured["vectorized"] <= bound + 1e-9
        assert measured["vectorized"] == pytest.approx(measured["scalar"], abs=1e-10)

    @given(
        m=st.integers(10, 30),
        passes=st.integers(1, 3),
        lam=st.floats(0.05, 0.5),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=15, deadline=None)
    def test_strongly_convex_bound_holds_on_both_paths(self, m, passes, lam, seed):
        from repro.optim.projection import L2BallProjection

        loss = LogisticLoss(regularization=lam)
        radius = 1.0 / lam
        props = loss.properties(radius=radius)
        schedule = CappedInverseTSchedule(props.smoothness, props.strong_convexity)
        bound = strongly_convex_decreasing_step(props, m, passes).value
        for execution in ("scalar", "vectorized"):
            measured = paired_divergence(
                loss, schedule, m, 5, passes, seed=seed,
                projection=L2BallProjection(radius), execution=execution,
            )
            assert measured <= bound + 1e-9
