"""The state-of-the-art white-box private SGD baselines of Section 4.

* :func:`scs13_train` — Song, Chaudhuri & Sarwate (2013), per-update noise,
  extended to multiple passes as in the paper.
* :func:`bst14_train` — Bassily, Smith & Thakurta (2014) in the paper's
  constant-epoch extension (Algorithms 4 and 5), (ε,δ)-DP only.
"""

from repro.baselines.bst14 import (
    bst14_noise_sigma,
    bst14_train,
    per_iteration_sensitivity,
    solve_composition_epsilon,
)
from repro.baselines.common import BaselineResult
from repro.baselines.scs13 import scs13_gaussian_sigma, scs13_noise_scale, scs13_train

__all__ = [
    "BaselineResult",
    "scs13_train",
    "scs13_noise_scale",
    "scs13_gaussian_sigma",
    "bst14_train",
    "bst14_noise_sigma",
    "per_iteration_sensitivity",
    "solve_composition_epsilon",
]
