"""The observability layer: metrics registry, job traces, consistency.

Three layers of guarantees:

* **Unit** — counters/gauges/histograms record correctly, the Prometheus
  text exposition is well-formed (checked by a small parser, not string
  soup), the JSON dump round-trips exactly, traces are gapless by
  construction and serialize bitwise.
* **Integration** — every terminal job record carries a complete,
  monotonically-ordered trace whose attributes match the record's own
  fields; traces survive the WAL-recovery restart.
* **Consistency** — the exported numbers equal the ground truth they
  sample: scan page totals equal the dispatch log and the buffer pool's
  per-heap deltas, ledger gauges equal the accountant's statements at
  every sampled instant, never just at quiescence.
"""

from __future__ import annotations

import json
import re
import threading
import warnings

import pytest

from repro.obs import metrics as obs
from repro.obs.summary import metric_samples, metric_value, serve_summary_lines
from repro.obs.trace import SPAN_ORDER, JobTrace
from repro.optim.losses import LogisticLoss
from repro.service import JobStatus, TrainingService
from tests.conftest import make_binary_data

M, D = 240, 6
EPS = 0.05
X, Y = make_binary_data(M, D, seed=33)


def make_service(workers: int = 1, cap: float = 10.0, **kwargs) -> TrainingService:
    service = TrainingService(scan_seed=7, workers=workers, **kwargs)
    service.register_table("t", X, Y)
    service.open_budget("alice", "t", cap)
    return service


def submit_one(service, principal="alice", table="t", seed=400, **kwargs):
    params = dict(epsilon=EPS, passes=1, batch_size=30, seed=seed)
    params.update(kwargs)
    return service.submit(principal, table, LogisticLoss(1e-3), **params)


# -- metrics: unit ---------------------------------------------------------------


class TestMetricsPrimitives:
    def test_counter_counts_and_rejects_negatives(self):
        reg = obs.MetricsRegistry()
        c = reg.counter("repro_test_total", "help", ("table",))
        c.inc(table="a")
        c.inc(2, table="a")
        c.inc(table="b")
        assert c.value(table="a") == 3
        assert c.value(table="b") == 1
        assert c.value(table="never") == 0
        with pytest.raises(ValueError):
            c.inc(-1, table="a")

    def test_counter_label_set_is_exact(self):
        reg = obs.MetricsRegistry()
        c = reg.counter("repro_test_total", "help", ("table",))
        with pytest.raises(ValueError):
            c.inc()  # missing the label
        with pytest.raises(ValueError):
            c.inc(table="a", extra="b")
        plain = reg.counter("repro_plain_total", "help")
        with pytest.raises(ValueError):
            plain.inc(table="a")

    def test_gauge_sets_and_moves(self):
        reg = obs.MetricsRegistry()
        g = reg.gauge("repro_test_gauge", "help")
        g.set(4.5)
        g.inc(-1.5)
        assert g.value() == 3.0

    def test_histogram_buckets_are_cumulative_in_exposition(self):
        reg = obs.MetricsRegistry()
        h = reg.histogram("repro_test_seconds", "help", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        assert h.count() == 5
        assert h.sum() == pytest.approx(56.05)
        ((key, counts, total, count),) = h.samples()
        assert counts == [1, 2, 1]  # per-bucket, 50.0 overflows them all
        text = reg.render_prometheus()
        assert 'repro_test_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_test_seconds_bucket{le="1"} 3' in text
        assert 'repro_test_seconds_bucket{le="10"} 4' in text
        assert 'repro_test_seconds_bucket{le="+Inf"} 5' in text
        assert "repro_test_seconds_count 5" in text

    def test_histogram_rejects_unsorted_buckets(self):
        reg = obs.MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("repro_bad_seconds", "help", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("repro_bad2_seconds", "help", buckets=(2.0, 1.0))

    def test_invalid_metric_names_raise(self):
        reg = obs.MetricsRegistry()
        for name in ("", "1starts_with_digit", "has space", "has-dash"):
            with pytest.raises(ValueError):
                reg.counter(name, "help")

    def test_get_or_create_is_idempotent_and_typed(self):
        reg = obs.MetricsRegistry()
        first = reg.counter("repro_idem_total", "help", ("table",))
        again = reg.counter("repro_idem_total", "other help", ("table",))
        assert first is again
        with pytest.raises(ValueError):
            reg.gauge("repro_idem_total", "help", ("table",))
        with pytest.raises(ValueError):
            reg.counter("repro_idem_total", "help", ("other",))

    def test_collectors_run_at_render_time_only(self):
        reg = obs.MetricsRegistry()
        calls = []

        def sample():
            calls.append(1)
            reg.gauge("repro_sampled", "help").set(len(calls))

        reg.add_collector(sample)
        assert calls == []
        dump = reg.render_json()
        assert calls == [1]
        assert metric_value(dump, "repro_sampled") == 1.0
        reg.render_prometheus()
        assert len(calls) == 2


_PROM_LABEL = r'[A-Za-z0-9_]+="(?:[^"\\]|\\.)*"'  # value may escape \" and \\
_PROM_SAMPLE = re.compile(
    r"^([A-Za-z_:][A-Za-z0-9_:]*)"                # metric name
    rf"(\{{{_PROM_LABEL}(,{_PROM_LABEL})*\}})?"    # optional {label="v",...}
    r" (-?[0-9].*|\+Inf|-Inf|NaN)$"               # value
)


def check_prometheus_text(text: str) -> int:
    """A minimal exposition-format validator: every sample line parses,
    every sample's base name was declared by a # TYPE line, histograms
    expose _bucket/_sum/_count. Returns the number of sample lines."""
    declared = {}
    samples = 0
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            assert len(line.split(" ", 3)) >= 3
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram", "untyped")
            declared[name] = kind
            continue
        match = _PROM_SAMPLE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name = match.group(1)
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in declared or base in declared, f"undeclared metric {name}"
        if name.endswith(("_bucket", "_sum", "_count")) and base in declared:
            assert declared[base] == "histogram"
        samples += 1
    return samples


class TestExposition:
    def test_prometheus_text_parses(self):
        reg = obs.MetricsRegistry()
        reg.counter("repro_a_total", "counts\nwith newline", ("table",)).inc(
            table='odd"name\\'
        )
        reg.gauge("repro_b", "a gauge").set(2.5)
        reg.histogram("repro_c_seconds", "hist", buckets=(0.5, 1.0)).observe(0.7)
        assert check_prometheus_text(reg.render_prometheus()) >= 6

    def test_json_dump_round_trips_exactly(self):
        reg = obs.MetricsRegistry()
        reg.counter("repro_a_total", "h", ("table",)).inc(3, table="t")
        reg.histogram("repro_c_seconds", "h", buckets=(0.5, 1.0)).observe(0.7)
        dump = reg.render_json()
        assert dump["format"] == "repro-metrics/v1"
        assert json.loads(json.dumps(dump)) == dump

    def test_disabled_registry_swallows_everything(self):
        reg = obs.disabled()
        assert reg.enabled is False
        c = reg.counter("repro_a_total", "h", ("table",))
        c.inc(table="t")
        c.inc(-5)  # not even validation runs on the null metric
        reg.gauge("repro_b", "h").set(1.0)
        reg.histogram("repro_c_seconds", "h").observe(0.1)
        reg.add_collector(lambda: (_ for _ in ()).throw(RuntimeError))
        assert reg.render_prometheus() == ""
        assert reg.render_json() == {"format": "repro-metrics/v1", "metrics": []}


# -- traces: unit ----------------------------------------------------------------


class TestJobTrace:
    def test_enter_closes_the_previous_span_gaplessly(self):
        trace = JobTrace()
        trace.enter("admit")
        closed = trace.enter("queued", checks=3)
        assert closed.name == "admit"
        assert closed.attrs == {"checks": 3}
        trace.close()
        a, b = trace.spans()
        assert (a.name, b.name) == ("admit", "queued")
        assert a.end == b.start  # shared boundary: no gap, no overlap
        assert a.duration >= 0 and b.duration >= 0
        assert trace.current is None

    def test_close_is_idempotent_and_append_extends(self):
        trace = JobTrace()
        assert trace.close() is None
        trace.enter("commit")
        trace.close()
        span = trace.append("wal_sync")
        assert trace.names() == ["commit", "wal_sync"]
        assert span.start == trace.spans()[0].end
        assert trace.duration == pytest.approx(
            trace.spans()[-1].end - trace.spans()[0].start
        )

    def test_payload_round_trips_bitwise_through_json(self):
        trace = JobTrace()
        trace.enter("admit")
        trace.enter("scan", pages=12)
        trace.close(retries=0)
        payload = trace.payload()
        reloaded = JobTrace.from_payload(json.loads(json.dumps(payload)))
        assert reloaded.payload() == payload  # float equality is exact
        for before, after in zip(trace.spans(), reloaded.spans()):
            assert (before.start, before.end) == (after.start, after.end)

    def test_open_span_is_not_serialized(self):
        trace = JobTrace()
        trace.enter("admit")
        trace.enter("queued")
        assert [s["name"] for s in trace.payload()["spans"]] == ["admit"]


# -- service integration ---------------------------------------------------------


def assert_well_formed(trace: JobTrace) -> None:
    """Complete ordering contract: known names, lifecycle order, gapless
    non-negative spans."""
    spans = trace.spans()
    names = [span.name for span in spans]
    assert names, "terminal record with an empty trace"
    positions = [SPAN_ORDER.index(name) for name in names]
    assert positions == sorted(positions), f"out of lifecycle order: {names}"
    assert len(set(names)) == len(names), f"duplicated span: {names}"
    for span in spans:
        assert span.duration >= 0.0
    for left, right in zip(spans, spans[1:]):
        assert left.end == right.start, f"gap between {left.name}/{right.name}"
    assert trace.current is None, "terminal record left a span open"


class TestLifecycleTraces:
    def test_completed_job_has_the_full_span_set(self):
        service = make_service()
        record = submit_one(service)
        service.drain()
        assert record.status is JobStatus.COMPLETED
        trace = service.trace(record.job_id)
        assert_well_formed(trace)
        assert trace.names() == [
            "admit", "queued", "claim", "scan", "epilogue", "commit",
        ]

    def test_scan_attrs_match_the_record_fields(self):
        service = make_service()
        record = submit_one(service)
        service.drain()
        scan = service.trace(record.job_id).span("scan")
        assert scan.attrs["pages"] == record.group_pages
        assert scan.attrs["retries"] == 0
        assert scan.attrs["boarding_offset"] == record.boarding_offset
        assert scan.attrs["epochs_ridden"] == record.epochs_ridden

    def test_rejected_job_stops_at_admit(self):
        service = make_service(cap=EPS / 2)
        record = submit_one(service)
        assert record.status is JobStatus.REJECTED
        assert_well_formed(record.trace)
        assert record.trace.names() == ["admit"]

    def test_cached_job_stops_at_admit(self):
        service = make_service()
        paid = submit_one(service)
        service.drain()
        free = submit_one(service)  # identical job: result-cache hit
        assert free.status is JobStatus.COMPLETED
        assert free.dispatch == "cached"
        assert free.trace.names() == ["admit"]
        assert paid.trace.names()[-1] == "commit"

    def test_cancelled_job_closes_its_queued_span(self):
        service = make_service()  # loop not started: the job stays queued
        record = submit_one(service)
        assert service.cancel(record.job_id)
        assert record.status is JobStatus.CANCELLED
        assert_well_formed(record.trace)
        assert record.trace.names() == ["admit", "queued"]

    def test_failed_job_trace_carries_the_error(self):
        from repro.rdbms.storage import FaultyHeapFile, MaterializedHeapFile

        service = TrainingService(scan_seed=7, workers=1, scan_retries=0)
        service.register_table(
            "f", heap=FaultyHeapFile(MaterializedHeapFile(X, Y), fail_pages=(0,))
        )
        service.open_budget("alice", "f", 10.0)
        record = submit_one(service, table="f")
        service.drain()
        assert record.status is JobStatus.FAILED
        assert_well_formed(record.trace)
        assert record.trace.spans()[-1].name == "scan"
        assert record.trace.spans()[-1].attrs.get("error")

    def test_trace_of_unknown_job_raises(self):
        with pytest.raises(KeyError):
            make_service().trace("job-nope")

    def test_elevator_rider_spans_stay_ordered(self):
        service = make_service(workers=2, elevator=True)
        records = [submit_one(service, seed=500 + i) for i in range(4)]
        service.drain()
        for record in records:
            assert record.status is JobStatus.COMPLETED, record.error
            assert_well_formed(record.trace)
            assert record.trace.names()[-1] == "commit"

    def test_wal_sync_span_trails_a_durable_run(self, tmp_path):
        service = make_service(state_dir=tmp_path / "state")
        record = submit_one(service)
        service.drain()
        assert record.trace.names()[-1] == "wal_sync"
        assert_well_formed(record.trace)

    def test_traces_survive_restart_bitwise(self, tmp_path):
        state = tmp_path / "state"
        service = make_service(state_dir=state)
        records = [submit_one(service, seed=600 + i) for i in range(3)]
        service.drain()
        service.save_state()

        resumed = TrainingService(scan_seed=7, state_dir=state)
        resumed.register_table("t", X, Y)
        assert resumed.load_state() == len(records)
        for record in records:
            reloaded = resumed.trace(record.job_id).spans()
            # The durable trace is the admit->commit prefix: the trailing
            # wal_sync span is appended live, after the journal event.
            original = record.trace.spans()[:len(reloaded)]
            assert [s.name for s in reloaded] == [s.name for s in original]
            assert [s.name for s in reloaded][-1] == "commit"
            for before, after in zip(original, reloaded):
                assert (before.start, before.end) == (after.start, after.end)
                assert before.attrs == after.attrs


# -- telemetry consistency -------------------------------------------------------


class TestTelemetryConsistency:
    def test_scan_pages_equal_dispatch_log_and_pool_deltas(self):
        service = make_service(workers=2)
        before = {
            name: stats.page_reads
            for name, stats in service.session.table_stats().items()
        }
        for i in range(5):
            submit_one(service, seed=700 + i, passes=1 + i % 2)
        service.drain()
        dump = service.metrics(format="json")
        exported = {
            sample["labels"]["table"]: sample["value"]
            for sample in metric_samples(dump, "repro_scan_pages_total")
        }
        logged = sum(pages for _, _, pages in service.scheduler.dispatch_log)
        assert sum(exported.values()) == logged
        for name, stats in service.session.table_stats().items():
            assert exported.get(name, 0) == stats.page_reads - before[name]

    def test_scan_and_queue_histograms_are_populated(self):
        service = make_service()
        for i in range(3):
            submit_one(service, seed=710 + i)
        service.drain()
        dump = service.metrics(format="json")
        (scan_sample,) = metric_samples(dump, "repro_scan_duration_seconds")
        assert scan_sample["count"] == len(service.scheduler.dispatch_log)
        assert scan_sample["sum"] > 0.0
        (wait_sample,) = metric_samples(dump, "repro_queue_wait_seconds")
        assert wait_sample["count"] == 3

    def test_registry_and_cache_metrics_match_ground_truth(self):
        service = make_service()
        submit_one(service, seed=720)
        service.drain()
        submit_one(service, seed=720)  # cache hit
        dump = service.metrics(format="json")
        assert metric_value(dump, "repro_registry_jobs", status="completed") == 2
        assert metric_value(dump, "repro_cache_hits_total") == 1
        assert metric_value(
            dump, "repro_scan_overlap_peak"
        ) == service.peak_scan_overlap
        assert metric_value(dump, "repro_scan_groups_total") == 1

    def test_ledger_gauges_equal_statements_at_every_sampled_instant(self):
        service = make_service(workers=2, cap=10.0)
        service.open_budget("bob", "t", 5.0)
        stop = threading.Event()
        violations = []

        def sampler():
            while not stop.is_set():
                dump = service.metrics(format="json")
                for sample in metric_samples(dump, "repro_ledger_epsilon_spent"):
                    labels = sample["labels"]
                    cap = metric_value(
                        dump, "repro_ledger_epsilon_cap", **labels
                    )
                    reserved = metric_value(
                        dump, "repro_ledger_epsilon_reserved", **labels
                    )
                    if sample["value"] + reserved > cap + 1e-9:
                        violations.append((labels, sample["value"], reserved))
                    if sample["value"] < -1e-12 or reserved < -1e-12:
                        violations.append((labels, sample["value"], reserved))

        thread = threading.Thread(target=sampler)
        thread.start()
        try:
            for i in range(8):
                submit_one(service, principal=("alice", "bob")[i % 2],
                           seed=730 + i)
            service.drain()
        finally:
            stop.set()
            thread.join()
        assert violations == []
        # At quiescence the gauges equal the statements exactly.
        dump = service.metrics(format="json")
        for statement in service.budgets():
            labels = {
                "principal": statement.principal, "table": statement.table,
            }
            assert metric_value(
                dump, "repro_ledger_epsilon_spent", **labels
            ) == statement.spent[0]
            assert metric_value(
                dump, "repro_ledger_epsilon_reserved", **labels
            ) == statement.reserved[0]
        assert metric_value(dump, "repro_ledger_commits_total") == sum(
            1 for r in service.loop.finished
            if r.status is JobStatus.COMPLETED and r.receipt is not None
        )

    def test_wal_metrics_and_dump_file(self, tmp_path):
        service = make_service(
            state_dir=tmp_path / "state",
            metrics_file=tmp_path / "metrics.json",
        )
        submit_one(service, seed=740)
        service.drain()
        dump = service.metrics(format="json")
        assert metric_value(dump, "repro_wal_syncs_total") == service.wal.syncs
        assert (
            metric_value(dump, "repro_wal_compactions_total")
            == service.wal.resets
        )
        (sync_sample,) = metric_samples(dump, "repro_wal_sync_seconds")
        assert sync_sample["count"] >= 1
        on_disk = json.loads((tmp_path / "metrics.json").read_text())
        assert on_disk["format"] == "repro-metrics/v1"
        # The dump is a point-in-time snapshot of the same registry.
        assert {m["name"] for m in on_disk["metrics"]} <= {
            m["name"] for m in dump["metrics"]
        }

    def test_prometheus_exposition_of_a_live_service_parses(self, tmp_path):
        service = make_service(state_dir=tmp_path / "state")
        submit_one(service, seed=750)
        service.drain()
        text = service.metrics()
        assert check_prometheus_text(text) > 20
        for required in (
            "repro_scan_duration_seconds",
            "repro_scan_pages_total",
            "repro_queue_wait_seconds",
            "repro_pool_page_reads",
            "repro_ledger_epsilon_spent",
            "repro_wal_sync_seconds",
            "repro_registry_jobs",
        ):
            assert f"# TYPE {required} " in text, f"missing {required}"
        with pytest.raises(ValueError):
            service.metrics(format="xml")

    def test_concurrent_dumps_never_trip_the_failure_latch(self, tmp_path):
        """Regression: two worker autosaves dumping at once raced on the
        shared tmp file — the losing os.replace hit ENOENT and latched
        _metrics_dump_failed, silently ending export for the service's
        lifetime. Dumps serialize on their own lock now."""
        service = make_service(metrics_file=tmp_path / "metrics.prom")
        submit_one(service, seed=770)
        service.drain()
        threads = [
            threading.Thread(target=service._dump_metrics) for _ in range(8)
        ]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not caught
        assert not service._metrics_dump_failed
        text = (tmp_path / "metrics.prom").read_text()
        assert check_prometheus_text(text) > 0

    def test_elevator_boarding_counters(self):
        service = make_service(workers=2, elevator=True)
        for i in range(4):
            submit_one(service, seed=760 + i)
        service.drain()
        dump = service.metrics(format="json")
        completed = metric_value(dump, "repro_registry_jobs", status="completed")
        assert completed == 4
        assert metric_value(
            dump, "repro_elevator_boardings_total", table="t"
        ) == 4  # every elevator-mode job boards a flight exactly once
        riders = metric_samples(dump, "repro_elevator_riders")
        assert riders and riders[0]["count"] >= 1


# -- satellites ------------------------------------------------------------------


class TestDispatchErrorWindow:
    def test_error_log_is_bounded_and_counted(self):
        from repro.service.worker import _DISPATCH_ERROR_WINDOW

        service = make_service()
        for index in range(_DISPATCH_ERROR_WINDOW + 44):
            service.loop._log_dispatch_error(f"error {index}")
        assert len(service.loop.dispatch_errors) == _DISPATCH_ERROR_WINDOW
        assert service.loop.dispatch_errors[0] == "error 44"
        counter = service.metrics_registry.get(
            "repro_worker_dispatch_errors_total"
        )
        assert counter.value() == _DISPATCH_ERROR_WINDOW + 44


class TestRegistryRetention:
    def test_oldest_terminal_weights_evict_first(self):
        service = make_service(max_terminal_records=2)
        records = [submit_one(service, seed=800 + i) for i in range(4)]
        service.drain()
        assert [r.weights_evicted for r in records] == [
            True, True, False, False,
        ]
        for record in records[:2]:
            assert record.model is None
            with pytest.raises(KeyError, match="retention"):
                service.model(record.job_id)
            # The metadata survives eviction — only the weights drop.
            assert record.receipt is not None
            assert record.trace.names()[-1] == "commit"
        for record in records[2:]:
            assert service.model(record.job_id) is not None
        assert service.registry.weights_evicted_total == 2
        dump = service.metrics(format="json")
        assert metric_value(dump, "repro_registry_weights_evicted_total") == 2

    def test_eviction_patches_the_snapshot_payload(self, tmp_path):
        state = tmp_path / "state"
        service = make_service(max_terminal_records=1, state_dir=state)
        records = [submit_one(service, seed=810 + i) for i in range(2)]
        service.drain()
        service.save_state()

        resumed = TrainingService(scan_seed=7)
        resumed.register_table("t", X, Y)
        resumed.load_state(state)
        evicted = resumed.result(records[0].job_id)
        assert evicted.weights_evicted and evicted.model is None
        with pytest.raises(KeyError, match="retention"):
            resumed.model(records[0].job_id)
        assert resumed.model(records[1].job_id) is not None

    def test_invalid_cap_raises(self):
        with pytest.raises(ValueError):
            TrainingService(max_terminal_records=0)


class TestServeSummary:
    def test_summary_lines_render_from_the_registry(self):
        service = make_service()
        submit_one(service, seed=820)
        service.drain()
        lines = serve_summary_lines(service, table_names=("t",))
        text = "\n".join(lines)
        assert "job statuses    : completed=1" in text
        assert "scans per table : t=1" in text
        assert "scan groups     : 1" in text
        assert "spent eps 0.050 of 10.000" in text
