"""Command-line interface.

Two subcommands::

    python -m repro train --dataset protein --epsilon 0.2 [--delta auto]
        Train a bolt-on private model on a registry dataset and report
        accuracy, sensitivity, and noise magnitude.

    python -m repro reproduce {table2,table3,table4,fig1,fig2} [options]
        Regenerate one of the cheap paper artefacts and print it. (The
        accuracy figures take minutes; run the benchmark harness for
        those: ``pytest benchmarks/ --benchmark-only``.)

The CLI is intentionally a thin shell over the library — everything it
does is one public API call.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.estimators import BoltOnPrivateClassifier
from repro.data.registry import REGISTRY
from repro.evaluation.figures import (
    figure1_integration,
    figure2_scalability,
    load_experiment_dataset,
)
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.tables import table2_rows, table3, table4_rows
from repro.optim.losses import LogisticLoss


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bolt-on differentially private SGD (Wu et al., SIGMOD 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a private model on a dataset")
    train.add_argument(
        "--dataset", choices=sorted(REGISTRY), default="protein",
        help="registry dataset (synthetic stand-in)",
    )
    train.add_argument("--epsilon", type=float, required=True)
    train.add_argument(
        "--delta", default="0",
        help="'auto' for 1/m^2, or a float (0 = pure eps-DP)",
    )
    train.add_argument("--passes", type=int, default=10)
    train.add_argument("--batch-size", type=int, default=50)
    train.add_argument(
        "--regularization", type=float, default=1e-3,
        help="lambda; 0 selects the convex Algorithm 1",
    )
    train.add_argument("--loss", choices=("logistic", "huber"), default="logistic")
    train.add_argument("--scale", type=float, default=None,
                       help="dataset scale (default: registry default)")
    train.add_argument("--seed", type=int, default=0)

    reproduce = sub.add_parser("reproduce", help="regenerate a paper artefact")
    reproduce.add_argument(
        "artefact", choices=("table2", "table3", "table4", "fig1", "fig2"),
    )
    return parser


def _train(args: argparse.Namespace) -> int:
    pair = load_experiment_dataset(args.dataset, scale=args.scale, seed=args.seed)
    train_ds, test_ds = pair.train, pair.test
    if train_ds.num_classes != 2:
        print(
            f"{args.dataset} is multiclass; the CLI trains binary models — "
            "use repro.multiclass.train_one_vs_rest from Python",
            file=sys.stderr,
        )
        return 2
    delta = 1.0 / train_ds.size**2 if args.delta == "auto" else float(args.delta)

    classifier = BoltOnPrivateClassifier(
        epsilon=args.epsilon,
        delta=delta,
        loss=args.loss,
        regularization=args.regularization,
        passes=args.passes,
        batch_size=args.batch_size,
    ).fit(train_ds.features, train_ds.labels, random_state=args.seed)

    print(f"dataset         : {train_ds.name} (m={train_ds.size}, d={train_ds.dimension})")
    print(f"privacy         : {classifier.privacy_}")
    print(f"sensitivity     : {classifier.sensitivity_:.6g} "
          f"({classifier.result_.sensitivity.regime})")
    print(f"noise norm      : {classifier.noise_norm_:.6g}")
    print(f"test accuracy   : {classifier.score(test_ds.features, test_ds.labels):.4f}")
    return 0


def _reproduce(args: argparse.Namespace) -> int:
    if args.artefact == "table2":
        print(format_table(table2_rows()))
    elif args.artefact == "table3":
        print(format_table(table3()))
    elif args.artefact == "table4":
        props = LogisticLoss(regularization=1e-4).properties(radius=1e4)
        print(format_table(table4_rows(72876, props)))
    elif args.artefact == "fig1":
        fig = figure1_integration()
        for key, value in fig["meta"].items():
            print(f"{key}: {value}")
    elif args.artefact == "fig2":
        fig = figure2_scalability()
        print(format_series(
            "Figure 2(a) (simulated minutes/epoch)", "millions",
            fig["x"], fig["series"],
        ))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "train":
        return _train(args)
    return _reproduce(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main
    raise SystemExit(main())
