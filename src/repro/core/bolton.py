"""The bolt-on private PSGD algorithms (Algorithms 1 and 2).

The algorithms are *instantiations of output perturbation*: run unmodified
PSGD (the black box, :class:`repro.optim.PSGD`), compute the L2-sensitivity
from the paper's analysis (:mod:`repro.core.sensitivity`), sample one noise
vector (:mod:`repro.core.mechanisms`), and release ``w + kappa``.

* :func:`private_convex_psgd` — Algorithm 1. Constant step ``eta <= 2/beta``
  (default ``1/sqrt(m)``), ``Delta_2 = 2 k L eta / b``. ε-DP via spherical
  Laplace noise (Theorem 4) or (ε,δ)-DP via Gaussian noise (Theorem 6).
* :func:`private_strongly_convex_psgd` — Algorithm 2. Step
  ``min(1/beta, 1/(gamma t))``, ``Delta_2 = 2 L / (gamma m b)`` —
  independent of the number of passes (Theorems 5 and 7).
* :func:`private_psgd` — the generic entry point covering the additional
  step-size regimes of Corollaries 2–3.

All three return a :class:`PrivateTrainingResult` whose ``model`` is the
differentially private release. The noiseless model is retained on the
result under a deliberately loud name (``unreleased_noiseless_model``)
because the experiment harness needs it for utility accounting — releasing
it would void the guarantee, and the docstring says so.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.mechanisms import (
    NoiseMechanism,
    PrivacyParameters,
    mechanism_for,
)
from repro.core.sensitivity import SensitivityBound, sensitivity_for_schedule
from repro.optim.losses import Loss, LossProperties
from repro.optim.projection import IdentityProjection, L2BallProjection, Projection
from repro.optim.psgd import PSGD, PSGDConfig, PSGDResult
from repro.optim.schedules import (
    CappedInverseTSchedule,
    ConstantSchedule,
    StepSizeSchedule,
)
from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.validation import (
    check_matrix_labels,
    check_positive,
    check_positive_int,
    check_unit_ball,
)


@dataclass
class PrivateTrainingResult:
    """The outcome of one bolt-on private training run.

    ``model`` is the (ε, δ)-differentially private vector that may be
    published. ``unreleased_noiseless_model`` is the pre-noise iterate kept
    for experiment accounting only — **publishing it breaks the privacy
    guarantee**.
    """

    model: np.ndarray
    privacy: PrivacyParameters
    sensitivity: SensitivityBound
    noise_norm: float
    unreleased_noiseless_model: np.ndarray
    psgd: PSGDResult = field(repr=False)
    loss: Loss = field(repr=False)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Sign predictions of the *private* model."""
        return self.loss.predict(self.model, X)

    def accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        """Test accuracy of the private model."""
        X, y = check_matrix_labels(X, y)
        return float(np.mean(self.predict(X) == y))

    def noiseless_accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy of the unreleased noiseless model (diagnostics only)."""
        X, y = check_matrix_labels(X, y)
        return float(np.mean(self.loss.predict(self.unreleased_noiseless_model, X) == y))


def _prepare(
    X: np.ndarray,
    y: np.ndarray,
    require_unit_ball: bool,
) -> tuple[np.ndarray, np.ndarray, int, int]:
    X, y = check_matrix_labels(X, y)
    if require_unit_ball:
        check_unit_ball(X)
    m, d = X.shape
    return X, y, m, d


def _finish(
    loss: Loss,
    psgd_result: PSGDResult,
    sensitivity: SensitivityBound,
    privacy: PrivacyParameters,
    mechanism: Optional[NoiseMechanism],
    noise_rng: np.random.Generator,
) -> PrivateTrainingResult:
    """The output-perturbation step shared by every algorithm variant."""
    mech = mechanism if mechanism is not None else mechanism_for(privacy)
    noiseless = psgd_result.model
    noise = mech.sample(noiseless.shape[0], sensitivity.value, privacy, noise_rng)
    return PrivateTrainingResult(
        model=noiseless + noise,
        privacy=privacy,
        sensitivity=sensitivity,
        noise_norm=float(np.linalg.norm(noise)),
        unreleased_noiseless_model=noiseless,
        psgd=psgd_result,
        loss=loss,
    )


def private_convex_psgd(
    X: np.ndarray,
    y: np.ndarray,
    loss: Loss,
    epsilon: float,
    *,
    delta: float = 0.0,
    passes: int = 1,
    eta: Optional[float] = None,
    batch_size: int = 1,
    projection: Optional[Projection] = None,
    average: Optional[str] = None,
    fresh_permutation_each_pass: bool = False,
    mechanism: Optional[NoiseMechanism] = None,
    random_state: RandomState = None,
) -> PrivateTrainingResult:
    """Algorithm 1 — Private Convex Permutation-based SGD.

    Requires a convex (not strongly convex) loss whose derived properties
    give ``gamma = 0``, and a constant step ``eta <= 2/beta``; the default
    ``eta = 1/sqrt(m)`` matches Table 4. The release is ε-DP when
    ``delta == 0`` (Theorem 4) and (ε,δ)-DP otherwise (Theorem 6).

    Parameters mirror the paper's Table 1; ``projection`` defaults to
    unconstrained optimization (the paper's convex experiments).
    ``fresh_permutation_each_pass`` re-shuffles every pass — the paper's
    analysis "extends verbatim" to this variant (Section 3.2.3), so the
    sensitivity is unchanged.
    """
    X, y, m, d = _prepare(X, y, require_unit_ball=True)
    check_positive(epsilon, "epsilon")
    check_positive_int(passes, "passes")
    privacy = PrivacyParameters(epsilon, delta)
    proj = projection if projection is not None else IdentityProjection()

    properties = loss.properties(
        radius=proj.radius if np.isfinite(proj.radius) else None
    )
    if properties.is_strongly_convex:
        raise ValueError(
            "private_convex_psgd is Algorithm 1 (convex case); the supplied "
            "loss is strongly convex — use private_strongly_convex_psgd "
            "(Algorithm 2), whose sensitivity is smaller"
        )
    step = eta if eta is not None else 1.0 / np.sqrt(m)
    schedule = ConstantSchedule(step)

    sensitivity = sensitivity_for_schedule(
        properties, schedule, m, passes, batch_size
    )
    perm_rng, noise_rng = spawn_generators(random_state, 2)
    config = PSGDConfig(
        schedule=schedule,
        passes=passes,
        batch_size=batch_size,
        projection=proj,
        average=average,
        fresh_permutation_each_pass=fresh_permutation_each_pass,
    )
    result = PSGD(loss, config).run(X, y, random_state=perm_rng)
    return _finish(loss, result, sensitivity, privacy, mechanism, noise_rng)


def private_strongly_convex_psgd(
    X: np.ndarray,
    y: np.ndarray,
    loss: Loss,
    epsilon: float,
    *,
    delta: float = 0.0,
    passes: int = 1,
    batch_size: int = 1,
    radius: Optional[float] = None,
    average: Optional[str] = None,
    fresh_permutation_each_pass: bool = False,
    convergence_tolerance: Optional[float] = None,
    mechanism: Optional[NoiseMechanism] = None,
    random_state: RandomState = None,
) -> PrivateTrainingResult:
    """Algorithm 2 — Private Strongly Convex Permutation-based SGD.

    Uses the schedule ``eta_t = min(1/beta, 1/(gamma t))`` and the
    pass-independent sensitivity ``2L/(gamma m b)`` (Lemma 8). ε-DP when
    ``delta == 0`` (Theorem 5), (ε,δ)-DP otherwise (Theorem 7).

    ``radius`` bounds the hypothesis space (projection onto the L2 ball of
    that radius); following the paper's practice we default to
    ``R = 1/lambda`` where lambda is the loss's regularization constant.

    ``convergence_tolerance`` enables the "k is oblivious" strategy of
    Section 4.3: because the noise does not depend on k, PSGD may stop as
    soon as the training loss plateaus, with ``passes`` acting as the cap K.
    """
    X, y, m, d = _prepare(X, y, require_unit_ball=True)
    check_positive(epsilon, "epsilon")
    check_positive_int(passes, "passes")
    privacy = PrivacyParameters(epsilon, delta)

    if radius is None:
        if loss.regularization <= 0.0:
            raise ValueError(
                "a strongly convex loss requires regularization > 0; supply a "
                "regularized loss or an explicit radius"
            )
        radius = 1.0 / loss.regularization
    check_positive(radius, "radius")
    proj = L2BallProjection(radius)

    properties = loss.properties(radius=radius)
    if not properties.is_strongly_convex:
        raise ValueError(
            "private_strongly_convex_psgd is Algorithm 2 (strongly convex "
            "case); the supplied loss has gamma = 0 — use private_convex_psgd"
        )
    schedule = CappedInverseTSchedule(
        beta=properties.smoothness, gamma=properties.strong_convexity
    )
    sensitivity = sensitivity_for_schedule(
        properties, schedule, m, passes, batch_size
    )
    perm_rng, noise_rng = spawn_generators(random_state, 2)
    config = PSGDConfig(
        schedule=schedule,
        passes=passes,
        batch_size=batch_size,
        projection=proj,
        average=average,
        fresh_permutation_each_pass=fresh_permutation_each_pass,
        convergence_tolerance=convergence_tolerance,
    )
    result = PSGD(loss, config).run(X, y, random_state=perm_rng)
    return _finish(loss, result, sensitivity, privacy, mechanism, noise_rng)


def private_psgd(
    X: np.ndarray,
    y: np.ndarray,
    loss: Loss,
    epsilon: float,
    schedule: StepSizeSchedule,
    *,
    delta: float = 0.0,
    passes: int = 1,
    batch_size: int = 1,
    projection: Optional[Projection] = None,
    average: Optional[str] = None,
    mechanism: Optional[NoiseMechanism] = None,
    random_state: RandomState = None,
) -> PrivateTrainingResult:
    """Generic bolt-on private PSGD for any analysed step-size schedule.

    Covers the decreasing (Corollary 2) and square-root (Corollary 3)
    regimes in addition to the two main algorithms. The sensitivity is
    resolved by :func:`repro.core.sensitivity.sensitivity_for_schedule`,
    which refuses schedules without a known bound.
    """
    X, y, m, d = _prepare(X, y, require_unit_ball=True)
    check_positive(epsilon, "epsilon")
    check_positive_int(passes, "passes")
    privacy = PrivacyParameters(epsilon, delta)
    proj = projection if projection is not None else IdentityProjection()

    properties = loss.properties(
        radius=proj.radius if np.isfinite(proj.radius) else None
    )
    sensitivity = sensitivity_for_schedule(properties, schedule, m, passes, batch_size)
    perm_rng, noise_rng = spawn_generators(random_state, 2)
    config = PSGDConfig(
        schedule=schedule,
        passes=passes,
        batch_size=batch_size,
        projection=proj,
        average=average,
    )
    result = PSGD(loss, config).run(X, y, random_state=perm_rng)
    return _finish(loss, result, sensitivity, privacy, mechanism, noise_rng)


def noiseless_psgd(
    X: np.ndarray,
    y: np.ndarray,
    loss: Loss,
    schedule: StepSizeSchedule,
    *,
    passes: int = 1,
    batch_size: int = 1,
    projection: Optional[Projection] = None,
    average: Optional[str] = None,
    random_state: RandomState = None,
) -> PSGDResult:
    """The non-private baseline used throughout the evaluation section."""
    X, y = check_matrix_labels(X, y)
    config = PSGDConfig(
        schedule=schedule,
        passes=passes,
        batch_size=batch_size,
        projection=projection if projection is not None else IdentityProjection(),
        average=average,
    )
    return PSGD(loss, config).run(X, y, random_state=random_state)
