"""Tests for Algorithms 1 and 2 (the bolt-on private trainers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bolton import (
    noiseless_psgd,
    private_convex_psgd,
    private_psgd,
    private_strongly_convex_psgd,
)
from repro.core.mechanisms import SphericalLaplaceMechanism
from repro.optim.losses import HuberSVMLoss, LogisticLoss
from repro.optim.schedules import ConstantSchedule, DecreasingSchedule
from tests.conftest import make_binary_data


class TestPrivateConvexPSGD:
    def test_returns_private_result(self, medium_data):
        X, y = medium_data
        result = private_convex_psgd(
            X, y, LogisticLoss(), epsilon=1.0, passes=2, random_state=0
        )
        assert result.model.shape == (10,)
        assert result.privacy.epsilon == 1.0
        assert result.privacy.is_pure
        assert result.noise_norm > 0.0

    def test_sensitivity_matches_corollary1(self, medium_data):
        X, y = medium_data
        m = X.shape[0]
        result = private_convex_psgd(
            X, y, LogisticLoss(), epsilon=1.0, passes=4, batch_size=5, random_state=0
        )
        expected = 2 * 4 * 1.0 * (1.0 / np.sqrt(m)) / 5
        assert result.sensitivity.value == pytest.approx(expected)

    def test_custom_eta(self, medium_data):
        X, y = medium_data
        result = private_convex_psgd(
            X, y, LogisticLoss(), epsilon=1.0, passes=1, eta=0.05, random_state=0
        )
        assert result.sensitivity.value == pytest.approx(2 * 0.05)

    def test_noisy_model_is_noiseless_plus_noise(self, medium_data):
        X, y = medium_data
        result = private_convex_psgd(
            X, y, LogisticLoss(), epsilon=1.0, passes=1, random_state=7
        )
        gap = np.linalg.norm(result.model - result.unreleased_noiseless_model)
        assert gap == pytest.approx(result.noise_norm)

    def test_deterministic_given_seed(self, medium_data):
        X, y = medium_data
        a = private_convex_psgd(X, y, LogisticLoss(), epsilon=1.0, random_state=11)
        b = private_convex_psgd(X, y, LogisticLoss(), epsilon=1.0, random_state=11)
        np.testing.assert_array_equal(a.model, b.model)

    def test_delta_switches_to_gaussian(self, medium_data):
        X, y = medium_data
        result = private_convex_psgd(
            X, y, LogisticLoss(), epsilon=1.0, delta=1e-6, passes=1, random_state=0
        )
        assert not result.privacy.is_pure

    def test_rejects_strongly_convex_loss(self, medium_data):
        X, y = medium_data
        from repro.optim.projection import L2BallProjection

        with pytest.raises(ValueError, match="Algorithm 2"):
            private_convex_psgd(
                X, y, LogisticLoss(regularization=0.1), epsilon=1.0,
                projection=L2BallProjection(10.0), random_state=0,
            )

    def test_rejects_unnormalized_features(self):
        X = np.full((10, 3), 5.0)
        y = np.ones(10)
        with pytest.raises(ValueError, match="unit L2 ball"):
            private_convex_psgd(X, y, LogisticLoss(), epsilon=1.0)

    def test_more_noise_at_smaller_epsilon(self, medium_data):
        X, y = medium_data
        norms = []
        for eps in (0.1, 10.0):
            draws = [
                private_convex_psgd(
                    X, y, LogisticLoss(), epsilon=eps, passes=1, random_state=s
                ).noise_norm
                for s in range(30)
            ]
            norms.append(np.mean(draws))
        assert norms[0] > norms[1] * 10

    def test_accuracy_helpers(self, medium_data):
        X, y = medium_data
        result = private_convex_psgd(
            X, y, LogisticLoss(), epsilon=100.0, passes=5, batch_size=10,
            random_state=0,
        )
        assert 0.0 <= result.accuracy(X, y) <= 1.0
        assert result.noiseless_accuracy(X, y) > 0.85

    def test_explicit_mechanism(self, medium_data):
        X, y = medium_data
        result = private_convex_psgd(
            X, y, LogisticLoss(), epsilon=1.0,
            mechanism=SphericalLaplaceMechanism(), random_state=0,
        )
        assert result.noise_norm > 0


class TestPrivateStronglyConvexPSGD:
    def test_sensitivity_matches_lemma8(self, medium_data):
        X, y = medium_data
        m = X.shape[0]
        lam = 0.01
        loss = LogisticLoss(regularization=lam)
        result = private_strongly_convex_psgd(
            X, y, loss, epsilon=1.0, passes=3, batch_size=5, random_state=0
        )
        props = loss.properties(radius=1.0 / lam)
        expected = 2 * props.lipschitz / (props.strong_convexity * m) / 5
        assert result.sensitivity.value == pytest.approx(expected)

    def test_default_radius_is_one_over_lambda(self, medium_data):
        X, y = medium_data
        lam = 0.05
        result = private_strongly_convex_psgd(
            X, y, LogisticLoss(regularization=lam), epsilon=1.0, random_state=0
        )
        # L = 1 + lam * (1/lam) = 2 in the sensitivity
        m = X.shape[0]
        assert result.sensitivity.value == pytest.approx(2 * 2 / (lam * m))

    def test_requires_regularization_or_radius(self, medium_data):
        X, y = medium_data
        with pytest.raises(ValueError, match="regularization"):
            private_strongly_convex_psgd(
                X, y, LogisticLoss(), epsilon=1.0, random_state=0
            )

    def test_sensitivity_independent_of_passes(self, medium_data):
        X, y = medium_data
        loss = LogisticLoss(regularization=0.01)
        s1 = private_strongly_convex_psgd(
            X, y, loss, epsilon=1.0, passes=1, random_state=0
        ).sensitivity.value
        s5 = private_strongly_convex_psgd(
            X, y, loss, epsilon=1.0, passes=5, random_state=0
        ).sensitivity.value
        assert s1 == pytest.approx(s5)

    def test_early_stopping_strategy(self, medium_data):
        # Section 4.3: in the strongly convex case one can run to a
        # tolerance because the noise is oblivious to k.
        X, y = medium_data
        result = private_strongly_convex_psgd(
            X, y, LogisticLoss(regularization=0.1), epsilon=1.0, passes=50,
            convergence_tolerance=1e-3, batch_size=10, random_state=0,
        )
        assert result.psgd.converged_early
        assert result.psgd.passes_completed < 50

    def test_noiseless_model_stays_in_ball(self, medium_data):
        X, y = medium_data
        lam = 0.01
        result = private_strongly_convex_psgd(
            X, y, LogisticLoss(regularization=lam), epsilon=1.0, passes=2,
            random_state=0,
        )
        assert np.linalg.norm(result.unreleased_noiseless_model) <= 1 / lam + 1e-9

    def test_delta_variant(self, medium_data):
        X, y = medium_data
        result = private_strongly_convex_psgd(
            X, y, LogisticLoss(regularization=0.01), epsilon=0.5, delta=1e-6,
            random_state=0,
        )
        assert result.privacy.delta == 1e-6

    def test_huber_svm_works(self, medium_data):
        X, y = medium_data
        result = private_strongly_convex_psgd(
            X, y, HuberSVMLoss(smoothing=0.1, regularization=0.01), epsilon=1.0,
            passes=2, random_state=0,
        )
        assert np.all(np.isfinite(result.model))


class TestGenericPrivatePSGD:
    def test_decreasing_schedule(self, medium_data):
        X, y = medium_data
        m = X.shape[0]
        schedule = DecreasingSchedule(beta=1.0, m=m, c=0.5)
        result = private_psgd(
            X, y, LogisticLoss(), epsilon=1.0, schedule=schedule, passes=2,
            random_state=0,
        )
        assert result.sensitivity.regime.startswith("convex-decreasing")

    def test_unknown_schedule_rejected(self, medium_data):
        X, y = medium_data
        from repro.optim.schedules import InverseSqrtTSchedule

        with pytest.raises(TypeError):
            private_psgd(
                X, y, LogisticLoss(), epsilon=1.0, schedule=InverseSqrtTSchedule(),
                random_state=0,
            )

    def test_constant_schedule_matches_algorithm1(self, medium_data):
        X, y = medium_data
        schedule = ConstantSchedule(0.05)
        via_generic = private_psgd(
            X, y, LogisticLoss(), epsilon=1.0, schedule=schedule, passes=3,
            random_state=0,
        )
        via_algorithm1 = private_convex_psgd(
            X, y, LogisticLoss(), epsilon=1.0, eta=0.05, passes=3, random_state=0
        )
        assert via_generic.sensitivity.value == pytest.approx(
            via_algorithm1.sensitivity.value
        )


class TestNoiselessBaseline:
    def test_runs_and_learns(self, medium_data):
        X, y = medium_data
        result = noiseless_psgd(
            X, y, LogisticLoss(), ConstantSchedule(0.5), passes=10, batch_size=10,
            random_state=0,
        )
        accuracy = float(np.mean(LogisticLoss().predict(result.model, X) == y))
        assert accuracy > 0.9


class TestUtilityShape:
    """Qualitative utility claims of the evaluation section."""

    def test_bolton_beats_random_at_reasonable_epsilon(self):
        X, y = make_binary_data(2000, 8, seed=5)
        result = private_convex_psgd(
            X, y, LogisticLoss(), epsilon=2.0, passes=5, batch_size=50,
            random_state=0,
        )
        assert result.accuracy(X, y) > 0.7

    def test_accuracy_improves_with_epsilon(self):
        X, y = make_binary_data(2000, 8, seed=6)
        accs = []
        for eps in (0.05, 5.0):
            runs = [
                private_strongly_convex_psgd(
                    X, y, LogisticLoss(regularization=0.01), epsilon=eps,
                    passes=5, batch_size=50, random_state=s,
                ).accuracy(X, y)
                for s in range(5)
            ]
            accs.append(np.mean(runs))
        assert accs[1] > accs[0]
