"""Tests for the data layer: datasets, preprocessing, projection, registry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import Dataset
from repro.data.preprocessing import (
    max_row_norm,
    normalize_dataset,
    normalize_rows,
    project_to_unit_sphere,
)
from repro.data.projection import GaussianRandomProjection, project_dataset
from repro.data.registry import REGISTRY, get_spec, load, table3_rows
from repro.data.synthetic import (
    covertype_like,
    gaussian_clusters_multiclass,
    higgs_like,
    kddcup_like,
    linearly_separable_binary,
    mnist_like,
    protein_like,
)


class TestDataset:
    def make(self, m=50, d=4):
        rng = np.random.default_rng(0)
        return Dataset("demo", rng.normal(size=(m, d)),
                       np.where(rng.random(m) > 0.5, 1.0, -1.0))

    def test_basic_properties(self):
        ds = self.make()
        assert ds.size == 50
        assert ds.dimension == 4

    def test_split_partitions(self):
        ds = self.make(m=100)
        train, test = ds.split(test_fraction=0.3, random_state=0)
        assert train.size == 70
        assert test.size == 30
        combined = np.vstack([train.features, test.features])
        assert sorted(map(tuple, combined)) == sorted(map(tuple, ds.features))

    def test_split_extreme_fraction_rejected(self):
        ds = self.make(m=10)
        with pytest.raises(ValueError):
            ds.split(test_fraction=1.0)

    def test_subsample(self):
        ds = self.make(m=100)
        sub = ds.subsample(25, random_state=1)
        assert sub.size == 25

    def test_subsample_too_large(self):
        with pytest.raises(ValueError):
            self.make(m=10).subsample(11)

    def test_binarize_multiclass(self):
        rng = np.random.default_rng(1)
        ds = Dataset("mc", rng.normal(size=(30, 3)),
                     rng.integers(0, 3, 30).astype(float), num_classes=3)
        binary = ds.binarize(positive_class=1)
        assert set(np.unique(binary.labels)) <= {-1.0, 1.0}
        assert binary.num_classes == 2

    def test_binarize_binary_rejected(self):
        with pytest.raises(ValueError, match="already binary"):
            self.make().binarize(1)

    def test_invalid_num_classes(self):
        with pytest.raises(ValueError):
            Dataset("x", np.zeros((3, 2)), np.zeros(3), num_classes=1)


class TestPreprocessing:
    def test_normalize_rows_caps_norms(self, rng):
        X = rng.normal(size=(40, 6)) * 5
        normalized = normalize_rows(X)
        assert max_row_norm(normalized) <= 1.0 + 1e-12

    def test_normalize_rows_preserves_small(self, rng):
        X = rng.normal(size=(10, 4)) * 0.01
        np.testing.assert_array_equal(normalize_rows(X), X)

    def test_project_to_unit_sphere(self, rng):
        X = rng.normal(size=(20, 5))
        on_sphere = project_to_unit_sphere(X)
        np.testing.assert_allclose(np.linalg.norm(on_sphere, axis=1), 1.0)

    def test_sphere_handles_zero_row(self):
        X = np.zeros((2, 3))
        X[1] = [3.0, 0.0, 0.0]
        out = project_to_unit_sphere(X)
        np.testing.assert_array_equal(out[0], np.zeros(3))
        assert np.linalg.norm(out[1]) == pytest.approx(1.0)

    def test_normalize_dataset(self, rng):
        ds = Dataset("d", rng.normal(size=(10, 3)) * 4, np.ones(10))
        out = normalize_dataset(ds)
        assert max_row_norm(out.features) <= 1.0 + 1e-12

    @given(scale=st.floats(0.1, 100.0))
    @settings(max_examples=30, deadline=None)
    def test_direction_preserved(self, scale):
        X = np.array([[3.0, 4.0]]) * scale
        out = normalize_rows(X)
        np.testing.assert_allclose(out[0] / np.linalg.norm(out[0]), [0.6, 0.8])


class TestGaussianRandomProjection:
    def test_shape(self, rng):
        proj = GaussianRandomProjection(10, random_state=0).fit(100)
        X = rng.normal(size=(20, 100))
        assert proj.transform(X).shape == (20, 10)

    def test_unit_ball_after_projection(self, rng):
        proj = GaussianRandomProjection(10, random_state=0).fit(100)
        X = rng.normal(size=(20, 100))
        assert max_row_norm(proj.transform(X)) <= 1.0 + 1e-12

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            GaussianRandomProjection(5).transform(np.zeros((2, 10)))

    def test_target_exceeds_input_rejected(self):
        with pytest.raises(ValueError):
            GaussianRandomProjection(20).fit(10)

    def test_same_matrix_for_train_and_test(self, rng):
        train = Dataset("train", rng.normal(size=(30, 40)), np.ones(30))
        test = Dataset("test", rng.normal(size=(10, 40)), np.ones(10))
        projected_train, projection = project_dataset(train, 8, random_state=0)
        projected_test, _ = project_dataset(test, 8, projection=projection)
        assert projected_train.dimension == projected_test.dimension == 8
        # Same matrix: projecting the same row gives the same output.
        same = projection.transform(train.features[:1])
        np.testing.assert_allclose(same, projected_train.features[:1], atol=1e-12)

    def test_jl_distance_preservation(self, rng):
        # Without renormalization, random projection roughly preserves
        # pairwise distances (Johnson–Lindenstrauss) — the "approximate
        # utility preserved" claim of Section 2.
        X = rng.normal(size=(50, 200))
        proj = GaussianRandomProjection(64, random_state=1).fit(200)
        P = proj.transform(X, renormalize=False)
        original = np.linalg.norm(X[0] - X[1])
        projected = np.linalg.norm(P[0] - P[1])
        assert projected == pytest.approx(original, rel=0.5)

    def test_neighbouring_datasets_stay_neighbouring(self, rng):
        # Section 2: the projection is data-independent, so changing one
        # row changes exactly one projected row.
        X = rng.normal(size=(20, 30))
        X2 = X.copy()
        X2[7] = rng.normal(size=30)
        proj = GaussianRandomProjection(5, random_state=2).fit(30)
        A, B = proj.transform(X), proj.transform(X2)
        differing = np.where(np.any(A != B, axis=1))[0]
        np.testing.assert_array_equal(differing, [7])


class TestSyntheticGenerators:
    def test_binary_generator_properties(self):
        pair = linearly_separable_binary("demo", 200, 100, 12, random_state=0)
        assert pair.train.size == 200
        assert pair.test.size == 100
        assert pair.train.dimension == 12
        assert set(np.unique(pair.train.labels)) <= {-1.0, 1.0}
        assert max_row_norm(pair.train.features) <= 1.0 + 1e-12

    def test_deterministic(self):
        a = linearly_separable_binary("d", 50, 50, 5, random_state=3)
        b = linearly_separable_binary("d", 50, 50, 5, random_state=3)
        np.testing.assert_array_equal(a.train.features, b.train.features)

    def test_difficulty_ordering(self):
        """Lower margin noise must produce an easier linear problem."""
        from repro.optim.losses import LogisticLoss
        from repro.optim.psgd import run_psgd
        from repro.optim.schedules import ConstantSchedule

        accs = []
        for noise in (0.05, 2.0):
            pair = linearly_separable_binary(
                "d", 2000, 1000, 10, margin_noise=noise, flip_fraction=0.0,
                random_state=5,
            )
            result = run_psgd(
                LogisticLoss(), pair.train.features, pair.train.labels,
                ConstantSchedule(0.5), passes=5, batch_size=10, random_state=0,
            )
            accs.append(
                float(np.mean(
                    LogisticLoss().predict(result.model, pair.test.features)
                    == pair.test.labels
                ))
            )
        assert accs[0] > accs[1] + 0.05

    def test_multiclass_generator(self):
        pair = gaussian_clusters_multiclass("mc", 300, 100, 20, 4, random_state=0)
        assert pair.train.num_classes == 4
        assert set(np.unique(pair.train.labels)) <= {0.0, 1.0, 2.0, 3.0}
        assert max_row_norm(pair.train.features) <= 1.0 + 1e-12

    def test_dataset_stand_ins_have_paper_dimensions(self):
        assert mnist_like(scale=0.01).train.dimension == 784
        assert protein_like(scale=0.01).train.dimension == 74
        assert covertype_like(scale=0.01).train.dimension == 54
        assert higgs_like(scale=0.001).train.dimension == 28
        assert kddcup_like(scale=0.001).train.dimension == 41

    def test_scale_controls_size(self):
        small = protein_like(scale=0.01)
        large = protein_like(scale=0.02)
        assert large.train.size == pytest.approx(2 * small.train.size, rel=0.01)

    def test_mnist_is_ten_class(self):
        pair = mnist_like(scale=0.01)
        assert pair.train.num_classes == 10


class TestRegistry:
    def test_all_five_datasets(self):
        assert set(REGISTRY) == {"mnist", "protein", "covertype", "higgs", "kddcup"}

    def test_paper_sizes_recorded(self):
        assert get_spec("mnist").paper_train_size == 60000
        assert get_spec("protein").paper_train_size == 72876
        assert get_spec("covertype").paper_train_size == 498010
        assert get_spec("higgs").paper_train_size == 10_500_000

    def test_mnist_projection_noted(self):
        spec = get_spec("mnist")
        assert spec.projected_dimension == 50
        assert spec.training_dimension == 50
        assert get_spec("protein").training_dimension == 74

    def test_case_insensitive_lookup(self):
        assert get_spec("MNIST").name == "MNIST"

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            get_spec("cifar")

    def test_load_returns_pair(self):
        pair = load("protein", scale=0.005, seed=1)
        assert pair.train.size > 0
        assert pair.test.size > 0

    def test_table3_rows_match_paper(self):
        rows = table3_rows()
        assert len(rows) == 3
        by_name = {r["dataset"]: r for r in rows}
        assert by_name["MNIST"]["dimensions"] == "784 (50)"
        assert by_name["Protein"]["train_size"] == 72876
        assert by_name["Forest"]["test_size"] == 83002
