"""The service's unified error taxonomy — one exception per wire-visible fault.

Every fault a tenant can trigger through the verb surface is a
:class:`ServiceError` subclass carrying a stable, machine-readable
``code`` (the contract the HTTP layer's ``{"error": {"code", "message"}}``
envelope serializes) and the HTTP status it maps onto. The in-process
verbs raise these directly, and :class:`repro.api.client.ServiceClient`
re-raises the *same* classes from a decoded error envelope — so
``except UnknownJob`` (or matching on ``error.code``) behaves
identically whether the service is a Python object or a socket away.

Compatibility is structural: each taxonomy class also subclasses the
bare exception the verb used to raise (``UnknownJob`` **is a**
``KeyError``, ``InvalidCandidate`` **is a** ``ValueError``,
``BudgetRejected`` **is a** :class:`BudgetDenied`), so pre-taxonomy
callers — ``except KeyError`` around ``result()``, ``except
BudgetDenied`` in the scheduler — keep working unchanged.

:class:`BudgetDenied` lives here (re-exported by
:mod:`repro.service.ledger`, its historical home) so the ledger can
raise the taxonomy's :class:`BudgetRejected` without an import cycle.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.core.accountant import PrivacyBudgetExceeded


class ServiceError(Exception):
    """Base of the taxonomy: a fault with a stable wire ``code``."""

    #: Machine-readable identifier — stable across releases; the HTTP
    #: error envelope's ``error.code`` and the client's dispatch key.
    code: str = "service_error"
    #: The HTTP status the front-end maps this fault onto.
    http_status: int = 400

    def __str__(self) -> str:  # KeyError-derived subclasses would repr()-quote
        return Exception.__str__(self)


class UnknownJob(ServiceError, KeyError):
    """A job id the registry has never seen (status/result/model/trace/cancel)."""

    code = "unknown_job"
    http_status = 404


class UnknownTable(ServiceError, KeyError):
    """A submit against a table the catalog does not hold."""

    code = "unknown_table"
    http_status = 404


class InvalidCandidate(ServiceError, ValueError):
    """A candidate option the in-RDBMS dispatch cannot honor
    (currently: iterate averaging)."""

    code = "invalid_candidate"
    http_status = 400


class NotCancellable(ServiceError, ValueError):
    """A cancel that arrived too late: the job is already claimed into a
    window or terminal. (``TrainingService.cancel`` returns ``False``
    for this; the HTTP layer raises so the envelope carries the code.)"""

    code = "not_cancellable"
    http_status = 409


class BudgetDenied(PrivacyBudgetExceeded):
    """An admission-time denial: the reservation would overflow the cap
    (or the account does not exist — no budget means no spend)."""


class BudgetRejected(ServiceError, BudgetDenied):
    """The taxonomy face of :class:`BudgetDenied` — what
    :meth:`~repro.service.ledger.PrivacyBudgetLedger.reserve` raises.
    The scheduler converts it into a REJECTED record at admission, so it
    only escapes as an *error* when a caller reserves directly."""

    code = "budget_rejected"
    http_status = 403


class Unauthorized(ServiceError):
    """HTTP edge: missing, malformed, or unknown bearer token."""

    code = "unauthorized"
    http_status = 401


class PrincipalMismatch(ServiceError):
    """HTTP edge: an authenticated token submitting on behalf of a
    *different* principal — budget identity is enforced at the edge."""

    code = "principal_mismatch"
    http_status = 403


#: Every taxonomy class by its wire code — the client's decode table.
ERROR_CODES: Dict[str, Type[ServiceError]] = {
    cls.code: cls
    for cls in (
        ServiceError,
        UnknownJob,
        UnknownTable,
        InvalidCandidate,
        NotCancellable,
        BudgetRejected,
        Unauthorized,
        PrincipalMismatch,
    )
}


def error_for_code(code: str, message: str) -> Exception:
    """Rebuild the exception an error envelope describes.

    Taxonomy codes come back as their exact class; the HTTP layer's
    generic fallbacks keep their bare-exception contracts
    (``not_found`` → :class:`KeyError`, ``invalid_request`` →
    :class:`ValueError`); anything unrecognized degrades to a plain
    :class:`ServiceError` so new server codes never crash old clients.
    """
    cls = ERROR_CODES.get(code)
    if cls is not None:
        return cls(message)
    if code == "not_found":
        return KeyError(message)
    if code == "invalid_request":
        return ValueError(message)
    error = ServiceError(message)
    error.code = code  # preserve the server's word for it
    return error
