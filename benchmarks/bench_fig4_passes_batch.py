"""Figure 4 — the effect of passes and mini-batch size (MNIST-like).

(a) Test 1 (convex ε-DP, b = 1): 1/10/20 passes — more passes ⇒ more noise
    ⇒ *worse* accuracy.
(b) Test 3 (strongly convex ε-DP, b = 50): more passes cost nothing in
    noise and help convergence.
(c) Test 1 at 20 passes, b ∈ {1, 10, 50}: the b = 1 → 10 jump drastically
    improves accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.figures import (
    figure4_batch_size,
    figure4_passes,
    load_experiment_dataset,
)
from repro.evaluation.reporting import format_series
from repro.evaluation.scenarios import Scenario

from bench_util import run_once, write_report

EPSILONS = (0.5, 1.0, 2.0, 4.0)


def _pair():
    return load_experiment_dataset("mnist", scale=0.05, seed=0)


def bench_fig4a_convex_passes(benchmark):
    pair = _pair()
    fig = run_once(
        benchmark, figure4_passes, pair, Scenario.CONVEX_PURE,
        epsilons=EPSILONS, batch_size=1,
    )
    write_report(
        "fig4a_convex_passes",
        format_series("Figure 4(a): convex, b=1 — passes hurt", "epsilon",
                      fig["x"], fig["series"]),
    )
    one = np.mean(fig["series"]["1 pass"])
    twenty = np.mean(fig["series"]["20 passes"])
    assert one >= twenty - 0.02, f"1 pass {one} vs 20 passes {twenty}"


def bench_fig4b_strongly_convex_passes(benchmark):
    pair = _pair()
    fig = run_once(
        benchmark, figure4_passes, pair, Scenario.STRONGLY_CONVEX_PURE,
        epsilons=EPSILONS, batch_size=50, regularization=1e-3,
    )
    write_report(
        "fig4b_sc_passes",
        format_series("Figure 4(b): strongly convex, b=50 — passes help",
                      "epsilon", fig["x"], fig["series"]),
    )
    one = np.mean(fig["series"]["1 pass"])
    twenty = np.mean(fig["series"]["20 passes"])
    assert twenty >= one - 0.02, f"20 passes {twenty} vs 1 pass {one}"


def bench_fig4c_batch_size(benchmark):
    pair = _pair()
    fig = run_once(
        benchmark, figure4_batch_size, pair, epsilons=EPSILONS,
        batch_grid=(1, 10, 50), passes=20,
    )
    write_report(
        "fig4c_batch_size",
        format_series("Figure 4(c): convex, 20 passes — batch size effect",
                      "epsilon", fig["x"], fig["series"]),
    )
    b1 = np.mean(fig["series"]["mini-batch = 1"])
    b10 = np.mean(fig["series"]["mini-batch = 10"])
    b50 = np.mean(fig["series"]["mini-batch = 50"])
    assert b10 >= b1, f"b=10 {b10} vs b=1 {b1}"
    assert b50 >= b1
