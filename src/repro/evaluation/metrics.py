"""Evaluation metrics: classification accuracy and excess empirical risk."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.optim.losses import Loss
from repro.optim.projection import Projection
from repro.optim.psgd import PSGD, PSGDConfig
from repro.optim.schedules import ConstantSchedule
from repro.utils.rng import RandomState
from repro.utils.validation import check_matrix_labels


def classification_accuracy(model: np.ndarray, loss: Loss, X: np.ndarray, y: np.ndarray) -> float:
    """Fraction of test examples the linear model classifies correctly."""
    X, y = check_matrix_labels(X, y)
    return float(np.mean(loss.predict(np.asarray(model, dtype=np.float64), X) == y))


def zero_one_errors(model: np.ndarray, loss: Loss, X: np.ndarray, y: np.ndarray) -> int:
    """Error *count* — the chi_i statistic of the private tuning algorithm."""
    X, y = check_matrix_labels(X, y)
    return int(np.sum(loss.predict(np.asarray(model, dtype=np.float64), X) != y))


def empirical_risk(model: np.ndarray, loss: Loss, X: np.ndarray, y: np.ndarray) -> float:
    """``L_S(w)`` — mean training loss."""
    X, y = check_matrix_labels(X, y)
    return loss.batch_value(np.asarray(model, dtype=np.float64), X, y)


def reference_minimum_risk(
    loss: Loss,
    X: np.ndarray,
    y: np.ndarray,
    *,
    projection: Optional[Projection] = None,
    passes: int = 50,
    batch_size: int = 10,
    random_state: RandomState = 0,
) -> float:
    """Approximate ``L*_S = min_w L_S(w)`` with a long noiseless run.

    Excess-risk experiments (the Table 2 bench) need a reference optimum;
    many passes of averaged PSGD at a conservative step size is accurate
    enough for the *scaling* comparisons those benches make.
    """
    X, y = check_matrix_labels(X, y)
    m = X.shape[0]
    config = PSGDConfig(
        schedule=ConstantSchedule(1.0 / np.sqrt(m)),
        passes=passes,
        batch_size=batch_size,
        projection=projection if projection is not None else _identity(),
        average="uniform",
    )
    result = PSGD(loss, config).run(X, y, random_state=random_state)
    return min(
        empirical_risk(result.model, loss, X, y),
        empirical_risk(result.final_iterate, loss, X, y),
    )


def excess_empirical_risk(
    model: np.ndarray,
    loss: Loss,
    X: np.ndarray,
    y: np.ndarray,
    reference_risk: float,
) -> float:
    """``L_S(w) - L*_S`` given a precomputed reference optimum."""
    return empirical_risk(model, loss, X, y) - reference_risk


def _identity():
    from repro.optim.projection import IdentityProjection

    return IdentityProjection()
