"""Query execution: sequential scan, shuffle, and aggregate evaluation.

Bismarck drives each SGD epoch with an SQL query of the form::

    SELECT sgd_agg(features, label) FROM dataset ORDER BY RANDOM();

This module provides the corresponding physical operators:

* :class:`SeqScan` — page-at-a-time scan through the buffer pool;
* :class:`Shuffle` — the ``ORDER BY RANDOM()`` stage: materializes a random
  permutation of tuple ids and re-reads tuples in that order (every page
  touched once per resident window; with a too-small pool this produces
  the random-I/O penalty real shuffles pay);
* :func:`run_aggregate` — feed an operator's tuple stream through a UDA.

Operators expose the counters the cost model charges: tuples produced,
pages requested, comparison work for the shuffle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional, Tuple

import numpy as np

from repro.rdbms.catalog import TableInfo
from repro.rdbms.storage import BufferPool, tuples_per_page
from repro.rdbms.uda import UDA
from repro.utils.rng import RandomState, as_generator

#: A tuple stream item: (features row, label).
TupleItem = Tuple[np.ndarray, float]


@dataclass
class OperatorStats:
    """Work counters for one operator execution."""

    tuples_produced: int = 0
    pages_requested: int = 0
    shuffle_sorted_tuples: int = 0


class SeqScan:
    """Sequential scan in storage order."""

    def __init__(self, table: TableInfo, pool: BufferPool):
        self.table = table
        self.pool = pool
        self.stats = OperatorStats()

    def __iter__(self) -> Iterator[TupleItem]:
        for page in self.pool.scan(self.table.heap):
            self.stats.pages_requested += 1
            for row in range(page.tuple_count):
                self.stats.tuples_produced += 1
                yield page.features[row], float(page.labels[row])


class Shuffle:
    """``ORDER BY RANDOM()``: yield tuples in a fresh random order.

    The permutation is over global tuple ids; tuples are fetched through
    the buffer pool page by page, so a pool smaller than the table makes
    shuffled access expensive — exactly why Bismarck shuffles *once* and
    then scans sequentially each epoch. :class:`ShuffleOnce` implements
    that optimization.
    """

    def __init__(
        self,
        table: TableInfo,
        pool: BufferPool,
        random_state: RandomState = None,
    ):
        self.table = table
        self.pool = pool
        self.rng = as_generator(random_state)
        self.stats = OperatorStats()

    def permutation(self) -> np.ndarray:
        perm = self.rng.permutation(self.table.num_tuples)
        self.stats.shuffle_sorted_tuples += self.table.num_tuples
        return perm

    def __iter__(self) -> Iterator[TupleItem]:
        per_page = tuples_per_page(self.table.dimension)
        for tuple_id in self.permutation():
            page_id, row = divmod(int(tuple_id), per_page)
            page = self.pool.get_page(self.table.heap, page_id)
            self.stats.pages_requested += 1
            self.stats.tuples_produced += 1
            yield page.features[row], float(page.labels[row])


class ShuffleOnce:
    """Bismarck's strategy: permute tuple ids once, then replay that order
    every epoch with page-clustered access.

    Tuple ids are permuted, then visited grouped by page so each page is
    fetched once per epoch (the behaviour of Bismarck's shuffled-copy of
    the table). This preserves permutation semantics for SGD while keeping
    sequential-like I/O, which is what lets the paper's disk-based runs
    stay I/O-bound rather than seek-bound.
    """

    def __init__(
        self,
        table: TableInfo,
        pool: BufferPool,
        random_state: RandomState = None,
    ):
        self.table = table
        self.pool = pool
        self.rng = as_generator(random_state)
        self.stats = OperatorStats()
        self._permutation: Optional[np.ndarray] = None

    @property
    def permutation(self) -> np.ndarray:
        if self._permutation is None:
            self._permutation = self.rng.permutation(self.table.num_tuples)
            self.stats.shuffle_sorted_tuples += self.table.num_tuples
        return self._permutation

    def reshuffle(self) -> None:
        """Draw a fresh permutation (the fresh-permutation-per-pass mode)."""
        self._permutation = None

    def __iter__(self) -> Iterator[TupleItem]:
        # Group the permuted tuple ids by their page in permutation order:
        # within a page-visit we respect the permutation's relative order.
        per_page = tuples_per_page(self.table.dimension)
        perm = self.permutation
        page_ids, rows = np.divmod(perm, per_page)
        # Stable grouping: iterate the permutation, batching consecutive
        # runs that share a page (good locality for nearly-sorted perms)
        # while preserving the exact permutation order for correctness.
        for tuple_index in range(len(perm)):
            page = self.pool.get_page(self.table.heap, int(page_ids[tuple_index]))
            self.stats.pages_requested += 1
            self.stats.tuples_produced += 1
            row = int(rows[tuple_index])
            yield page.features[row], float(page.labels[row])


def run_aggregate(source, uda: UDA, **initialize_kwargs: Any) -> Any:
    """Evaluate ``SELECT uda(...) FROM source``: the aggregate pipeline."""
    state = uda.initialize(**initialize_kwargs)
    for features, label in source:
        state = uda.transition(state, features, label)
    return uda.terminate(state)
