"""Render a bench-gate report file as a GitHub-flavored markdown table.

CI runs every perf gate with ``--report bench-report.json`` and pipes
this script's output into ``$GITHUB_STEP_SUMMARY``, so the gate ratios
are readable from the Checks tab without opening a single log::

    python benchmarks/report_summary.py bench-report.json >> "$GITHUB_STEP_SUMMARY"

The same file is uploaded as a workflow artifact (the smoke-shape
numbers; the nightly full-shape job uploads ``BENCH_hotloops.json`` on
top). Exits 0 even when gates failed — failing the job is the gate
scripts' business; this one only reports.
"""

from __future__ import annotations

import json
import pathlib
import sys

#: Display order + labels (anything not listed renders after, as-is).
GATE_LABELS = {
    "vectorized_vs_scalar": "Vectorized >= 3x scalar epoch",
    "fused_multi_model": "Fused >= 3x sequential at K=16",
    "shared_scan_pages": "Shared-scan >= 3x page ratio",
    "async_and_cache": "Async bitwise + free cache replay",
    "parallel_dispatch": "Per-table overlap >= 1.5x global lock",
    "elevator_boarding": "Elevator >= 1.5x fewer pages than windows",
    "service_obs": "Telemetry overhead <= 5% of drain",
}


def render(report: dict) -> str:
    gates = report.get("gates", {})
    lines = [
        "### Perf gates",
        "",
        "| Gate | Measured | Floor | Result |",
        "| --- | ---: | ---: | :---: |",
    ]
    ordered = [name for name in GATE_LABELS if name in gates]
    ordered += [name for name in sorted(gates) if name not in GATE_LABELS]
    for name in ordered:
        entry = gates[name]
        label = GATE_LABELS.get(name, name)
        value, floor = entry.get("value"), entry.get("floor")
        measured = "—" if value is None else f"{value:.2f}"
        floor_text = "—" if floor is None else f"{floor:g}"
        result = "✅ pass" if entry.get("passed") else "❌ FAIL"
        shape = entry.get("shape") or {}
        if shape:
            shape_text = ", ".join(f"{k}={v}" for k, v in sorted(shape.items()))
            label = f"{label} <br><sub>{shape_text}</sub>"
        lines.append(f"| {label} | {measured} | {floor_text} | {result} |")
    if not ordered:
        lines.append("| _no gates reported_ | — | — | — |")
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: report_summary.py REPORT_JSON", file=sys.stderr)
        return 2
    path = pathlib.Path(argv[0])
    if not path.exists():
        # A crashed gate may never have written the report; the summary
        # should say so rather than fail the reporting step too.
        print(f"### Perf gates\n\n_no report written ({path})_\n")
        return 0
    print(render(json.loads(path.read_text())))
    return 0


if __name__ == "__main__":
    sys.exit(main())
