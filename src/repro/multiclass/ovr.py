"""One-vs-rest multiclass training with privacy-budget splitting.

The paper's MNIST experiment builds ten binary logistic models ("one for
each digit") and, because each model reads the whole training set, splits
the privacy budget evenly across them using basic sequential composition
(Section 4.3). This module packages that pattern for any trainer with the
library's common signature.

Every class's model reads the *same* feature rows — only the ±1
relabeling differs — which makes OvR a one-scan workload: pass a
structural :class:`repro.core.bolton.BoltOnCandidate` as the trainer and
all C classes train fused, with the per-class relabeling expressed as one
``(C, m)`` label matrix instead of C relabeled copies. Opaque trainer
callables keep the sequential per-class path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.core.accountant import PrivacyAccountant, split_evenly
from repro.core.bolton import BoltOnCandidate, private_psgd_fleet, train_bolt_on
from repro.core.mechanisms import PrivacyParameters
from repro.utils.rng import RandomState, spawn_generators
from repro.utils.validation import check_matrix_labels

#: A binary trainer: (X, y_pm1, epsilon, delta, rng) -> object with ``model``.
BinaryTrainer = Callable[..., object]


@dataclass
class OneVsRestResult:
    """Ten (or C) binary models plus argmax prediction."""

    models: List[np.ndarray]
    classes: List[int]
    privacy: PrivacyParameters
    per_model_privacy: PrivacyParameters
    sub_results: List[object] = field(repr=False, default_factory=list)

    @property
    def weight_matrix(self) -> np.ndarray:
        """The ``(C, d)`` stacked model matrix.

        Rebuilt from ``models`` on each access (stacking C small vectors
        is noise next to the score GEMM), so mutating ``models`` is
        always reflected — no stale cache.
        """
        return np.stack([np.asarray(w, dtype=np.float64) for w in self.models])

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        """Margin <w_c, x> per class; shape (n, C).

        One GEMM against the stacked ``(C, d)`` weight matrix — the same
        margin-matrix form the fused training engine uses — instead of a
        per-class loop of C matrix-vector products.
        """
        X = np.asarray(X, dtype=np.float64)
        return X @ self.weight_matrix.T

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Class with the largest margin."""
        scores = self.decision_scores(X)
        return np.asarray(self.classes, dtype=np.float64)[np.argmax(scores, axis=1)]

    def accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        X, y = check_matrix_labels(X, y)
        return float(np.mean(self.predict(X) == y))


def class_label_matrix(y: np.ndarray, classes: Sequence[int]) -> np.ndarray:
    """The ``(C, m)`` one-vs-rest relabeling: row c is ``±1`` for class c.

    One vectorized comparison instead of C relabeled copies — the form the
    fused engine consumes directly.
    """
    y = np.asarray(y, dtype=np.float64)
    class_column = np.asarray(list(classes), dtype=np.float64)[:, None]
    return np.where(y[None, :] == class_column, 1.0, -1.0)


def train_one_vs_rest(
    X: np.ndarray,
    y: np.ndarray,
    trainer: Union[BinaryTrainer, BoltOnCandidate],
    epsilon: float,
    *,
    delta: float = 0.0,
    classes: Optional[Sequence[int]] = None,
    random_state: RandomState = None,
    accountant: Optional[PrivacyAccountant] = None,
    fused: Optional[bool] = None,
) -> OneVsRestResult:
    """Train one private binary model per class on an even budget split.

    ``trainer`` is either the classic callable — invoked as ``trainer(X,
    y_pm1, epsilon=eps_i, delta=delta_i, random_state=rng)``, returning an
    object exposing ``model`` (all of
    :func:`repro.core.private_convex_psgd`,
    :func:`repro.core.private_strongly_convex_psgd`,
    :func:`repro.baselines.scs13_train` qualify via a small lambda) — or a
    structural :class:`repro.core.bolton.BoltOnCandidate`.

    With a candidate, ``fused=None`` (the default) trains **all classes in
    one data scan**: the per-class relabelings become one ``(C, m)`` label
    matrix feeding the fused engine, each class keeps its own noise stream
    and its ε/C budget share, and the sensitivity/noise epilogue is
    per-class exactly as in the sequential path. ``fused=False`` trains a
    candidate sequentially; fusing an opaque callable raises.

    When an ``accountant`` is supplied every sub-model's spend is recorded
    against it (and the call fails loudly if the budget would overflow).
    """
    X, y = check_matrix_labels(X, y)
    total = PrivacyParameters(epsilon, delta)
    if classes is None:
        classes = sorted(int(c) for c in np.unique(y))
    if len(classes) < 2:
        raise ValueError(f"need at least two classes, got {classes}")

    is_candidate = isinstance(trainer, BoltOnCandidate)
    if fused is None:
        fused = is_candidate
    if fused and not is_candidate:
        raise ValueError(
            "fused one-vs-rest needs a structural BoltOnCandidate trainer; "
            "pass fused=False to train an opaque callable sequentially"
        )

    shares = split_evenly(total, len(classes))

    models: List[np.ndarray] = []
    sub_results: List[object] = []
    if fused:
        rngs = spawn_generators(random_state, len(classes) + 1)
        results = private_psgd_fleet(
            X,
            class_label_matrix(y, classes),
            [trainer] * len(classes),
            [share.epsilon for share in shares],
            delta=[share.delta for share in shares],
            random_states=rngs[:-1],
            scan_random_state=rngs[-1],
        )
        for cls, share, result in zip(classes, shares, results):
            if accountant is not None:
                accountant.spend(share, label=f"ovr-class-{cls}")
            models.append(np.asarray(result.model, dtype=np.float64))
            sub_results.append(result)
    else:
        rngs = spawn_generators(random_state, len(classes))
        for cls, share, rng in zip(classes, shares, rngs):
            y_binary = np.where(y == cls, 1.0, -1.0)
            if is_candidate:
                result: object = train_bolt_on(
                    X, y_binary, trainer, share.epsilon,
                    delta=share.delta, random_state=rng,
                )
            else:
                result = trainer(
                    X, y_binary, epsilon=share.epsilon, delta=share.delta,
                    random_state=rng,
                )
            if accountant is not None:
                accountant.spend(share, label=f"ovr-class-{cls}")
            models.append(np.asarray(result.model, dtype=np.float64))
            sub_results.append(result)

    return OneVsRestResult(
        models=models,
        classes=list(classes),
        privacy=total,
        per_model_privacy=shares[0],
        sub_results=sub_results,
    )
