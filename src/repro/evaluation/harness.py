"""Epsilon-sweep harness — the engine behind the accuracy figures.

One call produces the accuracy-vs-ε series of a figure row: for each ε on
the grid, train every requested algorithm (averaging over repeats) and
record test accuracy. Binary and multiclass (one-vs-rest with budget
splitting, the MNIST setup) datasets are both supported, as are the three
tuning modes of Section 4.5:

* ``fixed`` — the Figure 3 setting (k = 10, λ = 1e-4, b = 50);
* ``private`` — Algorithm 3 over the paper's grid (Figure 6);
* ``public`` — grid search on a public split (Figures 3/8 narrative).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.evaluation.scenarios import ALGORITHMS, Scenario, TrainSettings, train
from repro.multiclass.ovr import train_one_vs_rest
from repro.tuning.grid import ParameterGrid, paper_grid
from repro.tuning.private import privately_tuned_sgd
from repro.tuning.public import tune_on_public_data
from repro.utils.rng import RandomState, spawn_generators

#: MNIST's paper epsilon grid and the binary datasets' grid (Section 4.3).
MNIST_EPSILONS = (0.1, 0.2, 0.5, 1.0, 2.0, 4.0)
BINARY_EPSILONS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.4)


@dataclass
class SweepResult:
    """Accuracy series per algorithm over an epsilon grid."""

    dataset: str
    scenario: Scenario
    epsilons: List[float]
    series: Dict[str, List[float]] = field(default_factory=dict)
    tuning_mode: str = "fixed"

    def as_rows(self) -> List[dict]:
        """Long-format rows for printing or assertion."""
        rows = []
        for algorithm, accuracies in self.series.items():
            for eps, acc in zip(self.epsilons, accuracies):
                rows.append(
                    {
                        "dataset": self.dataset,
                        "scenario": self.scenario.name,
                        "algorithm": algorithm,
                        "epsilon": eps,
                        "accuracy": acc,
                    }
                )
        return rows


def algorithms_for(scenario: Scenario, include_noiseless: bool = True) -> List[str]:
    """Figure 3/6 panel membership: BST14 only in the (ε,δ) tests."""
    names = ["noiseless", "ours", "scs13"] if include_noiseless else ["ours", "scs13"]
    if scenario.supports_bst14:
        names.append("bst14")
    return names


def _train_once(
    algorithm: str,
    train_ds: Dataset,
    settings: TrainSettings,
    rng: np.random.Generator,
):
    """Train binary or (budget-split) one-vs-rest as the dataset demands."""
    if train_ds.num_classes == 2:
        return train(algorithm, train_ds.features, train_ds.labels, settings, rng)

    # Multiclass: split the budget across the one-vs-rest sub-models for the
    # private algorithms; the noiseless baseline has nothing to split.
    if algorithm == "noiseless":
        sub_epsilon = settings.epsilon
        sub_delta = settings.resolve_delta(train_ds.size)
    else:
        classes = train_ds.num_classes
        sub_epsilon = settings.epsilon / classes
        sub_delta = settings.resolve_delta(train_ds.size) / classes

    def binary_trainer(X, y, epsilon, delta, random_state):
        sub_settings = replace(settings, epsilon=epsilon, delta=delta)
        return train(algorithm, X, y, sub_settings, random_state)

    return train_one_vs_rest(
        train_ds.features,
        train_ds.labels,
        lambda X, y, epsilon, delta, random_state: binary_trainer(
            X, y, sub_epsilon, sub_delta, random_state
        ),
        # the OVR helper re-splits; hand it the full budget and let the
        # explicit per-model values above override its even split
        epsilon=settings.epsilon,
        delta=settings.resolve_delta(train_ds.size),
        random_state=rng,
    )


def accuracy_sweep(
    train_ds: Dataset,
    test_ds: Dataset,
    scenario: Scenario,
    epsilons: Sequence[float],
    *,
    algorithms: Optional[Sequence[str]] = None,
    settings: Optional[TrainSettings] = None,
    repeats: int = 1,
    random_state: RandomState = 0,
) -> SweepResult:
    """The Figure 3/8 fixed-parameter sweep."""
    if algorithms is None:
        algorithms = algorithms_for(scenario)
    base = settings if settings is not None else TrainSettings(scenario, epsilon=1.0)

    result = SweepResult(
        dataset=train_ds.name,
        scenario=scenario,
        epsilons=[float(e) for e in epsilons],
        tuning_mode="fixed",
    )
    rngs = spawn_generators(random_state, len(algorithms) * len(result.epsilons) * repeats)
    rng_iter = iter(rngs)

    for algorithm in algorithms:
        if algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {algorithm!r}")
        accuracies: List[float] = []
        for eps in result.epsilons:
            runs = []
            for _ in range(repeats):
                rng = next(rng_iter)
                trained = _train_once(
                    algorithm, train_ds, replace(base, scenario=scenario, epsilon=eps), rng
                )
                runs.append(
                    float(
                        np.mean(trained.predict(test_ds.features) == test_ds.labels)
                    )
                )
            accuracies.append(float(np.mean(runs)))
        result.series[algorithm] = accuracies
    return result


def private_tuning_sweep(
    train_ds: Dataset,
    test_ds: Dataset,
    scenario: Scenario,
    epsilons: Sequence[float],
    *,
    algorithms: Optional[Sequence[str]] = None,
    grid: Optional[ParameterGrid] = None,
    settings: Optional[TrainSettings] = None,
    random_state: RandomState = 0,
) -> SweepResult:
    """The Figure 6/7/9 sweep: every private point tuned via Algorithm 3.

    The noiseless baseline keeps fixed parameters (it has no privacy noise
    to tune against). Multiclass datasets are handled by tuning the binary
    sub-problem parameters jointly through the OVR wrapper.
    """
    if algorithms is None:
        algorithms = algorithms_for(scenario)
    if grid is None:
        grid = paper_grid(include_regularization=scenario.is_strongly_convex)
    base = settings if settings is not None else TrainSettings(scenario, epsilon=1.0)

    result = SweepResult(
        dataset=train_ds.name,
        scenario=scenario,
        epsilons=[float(e) for e in epsilons],
        tuning_mode="private",
    )
    rngs = spawn_generators(random_state, len(algorithms) * len(result.epsilons))
    rng_iter = iter(rngs)

    for algorithm in algorithms:
        accuracies: List[float] = []
        for eps in result.epsilons:
            rng = next(rng_iter)
            current = replace(base, scenario=scenario, epsilon=eps)
            if algorithm == "noiseless":
                trained = _train_once(algorithm, train_ds, current, rng)
                accuracies.append(
                    float(np.mean(trained.predict(test_ds.features) == test_ds.labels))
                )
                continue

            def trainer_factory(theta: dict, _alg=algorithm, _settings=current):
                def trainer(X, y, epsilon, delta, random_state):
                    tuned = replace(
                        _settings,
                        epsilon=epsilon,
                        delta=delta if delta > 0 else None,
                        passes=theta.get("passes", _settings.passes),
                        regularization=theta.get(
                            "regularization", _settings.regularization
                        ),
                    )
                    sub = Dataset(name="tuning", features=X, labels=y,
                                  num_classes=max(2, train_ds.num_classes))
                    return _train_once(_alg, sub, tuned, random_state)

                return trainer

            outcome = privately_tuned_sgd(
                train_ds.features,
                train_ds.labels,
                trainer_factory,
                grid,
                eps,
                delta=current.resolve_delta(train_ds.size),
                random_state=rng,
            )
            accuracies.append(
                float(np.mean(outcome.predict(test_ds.features) == test_ds.labels))
            )
        result.series[algorithm] = accuracies
    return result


def public_tuning_sweep(
    train_ds: Dataset,
    test_ds: Dataset,
    public_ds: Dataset,
    scenario: Scenario,
    epsilons: Sequence[float],
    *,
    algorithms: Optional[Sequence[str]] = None,
    grid: Optional[ParameterGrid] = None,
    settings: Optional[TrainSettings] = None,
    random_state: RandomState = 0,
) -> SweepResult:
    """Tuning using public data: pick parameters on ``public_ds``, then
    train privately on ``train_ds`` with them."""
    if algorithms is None:
        algorithms = algorithms_for(scenario)
    if grid is None:
        grid = paper_grid(include_regularization=scenario.is_strongly_convex)
    base = settings if settings is not None else TrainSettings(scenario, epsilon=1.0)
    public_train, public_val = public_ds.split(test_fraction=0.3, random_state=7)

    result = SweepResult(
        dataset=train_ds.name,
        scenario=scenario,
        epsilons=[float(e) for e in epsilons],
        tuning_mode="public",
    )
    rngs = spawn_generators(random_state, len(algorithms) * len(result.epsilons))
    rng_iter = iter(rngs)

    for algorithm in algorithms:
        accuracies: List[float] = []
        for eps in result.epsilons:
            rng = next(rng_iter)
            current = replace(base, scenario=scenario, epsilon=eps)
            if algorithm == "noiseless":
                trained = _train_once(algorithm, train_ds, current, rng)
                accuracies.append(
                    float(np.mean(trained.predict(test_ds.features) == test_ds.labels))
                )
                continue

            def trainer_factory(theta: dict, _alg=algorithm, _settings=current):
                def trainer(X, y, epsilon, delta, random_state):
                    tuned = replace(
                        _settings,
                        epsilon=epsilon,
                        delta=delta if delta > 0 else None,
                        passes=theta.get("passes", _settings.passes),
                        regularization=theta.get(
                            "regularization", _settings.regularization
                        ),
                    )
                    sub = Dataset(name="tuning", features=X, labels=y,
                                  num_classes=max(2, train_ds.num_classes))
                    return _train_once(_alg, sub, tuned, random_state)

                return trainer

            tuned = tune_on_public_data(
                public_train.features,
                public_train.labels,
                public_val.features,
                public_val.labels,
                trainer_factory,
                grid,
                eps,
                delta=current.resolve_delta(train_ds.size),
                random_state=rng,
            )
            final_settings = replace(
                current,
                passes=tuned.best_parameters.get("passes", current.passes),
                regularization=tuned.best_parameters.get(
                    "regularization", current.regularization
                ),
            )
            trained = _train_once(algorithm, train_ds, final_settings, rng)
            accuracies.append(
                float(np.mean(trained.predict(test_ds.features) == test_ds.labels))
            )
        result.series[algorithm] = accuracies
    return result
