"""Transport conformance: the HTTP front-end vs the in-process verbs.

One parametrized body runs against two transports — the in-process
``TrainingService`` verbs and a :class:`ServiceClient` speaking
``repro-api/v1`` to a :class:`ServiceApiServer` over a real socket —
and asserts they are indistinguishable:

* **Bitwise releases** — a job submitted over HTTP releases weights
  ``np.array_equal`` (atol=0) to the same job submitted in process,
  with the budget charged to the token-authenticated principal.
* **Identical faults** — every :class:`ServiceError` carries the same
  machine-readable ``code`` through both transports, and the legacy
  ``except KeyError`` catch works on either side of the socket.
* **Same verb semantics** — cancel's True/False contract, trace
  round-trips, budget statements, health.

Plus HTTP-only edges: bearer-token auth, principal pinning, the
envelope version tag, the metrics endpoint, admin shutdown, and
concurrent submitters sharing one socket server.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import ServiceApiServer, ServiceClient, WIRE_FORMAT
from repro.api.wire import JobView, check_envelope
from repro.optim.losses import LogisticLoss
from repro.service import (
    JobStatus,
    NotCancellable,
    ServiceError,
    TrainingService,
    UnknownJob,
    UnknownTable,
)
from repro.service.errors import PrincipalMismatch, Unauthorized
from tests.conftest import make_binary_data

M, D = 300, 8
EPS = 0.05
X, Y = make_binary_data(M, D, seed=21)

TOKENS = {"alice-token": "alice", "bob-token": "bob"}
ADMIN_TOKEN = "admin-token"


def make_service(workers: int = 1, cap: float = 10.0) -> TrainingService:
    service = TrainingService(fuse=True, scan_seed=5, workers=workers)
    service.register_table("t", X, Y)
    service.open_budget("alice", "t", cap)
    service.open_budget("bob", "t", cap)
    return service


class InProcessTransport:
    """The reference transport: the service's own verbs, renamed to the
    client's surface so one test body drives both."""

    name = "inproc"

    def __init__(self, service: TrainingService) -> None:
        self.service = service

    def submit(self, principal, **kwargs):
        return self.service.submit(principal, "t", **kwargs)

    def wait(self, job_id, timeout=30.0):
        record = self.service.result(job_id)
        assert record.wait(timeout)
        return record

    def result(self, job_id):
        return self.service.result(job_id)

    def model(self, job_id):
        return self.service.model(job_id)

    def trace(self, job_id):
        return self.service.trace(job_id)

    def cancel(self, job_id):
        return self.service.cancel(job_id)

    def budgets(self):
        return self.service.budgets()

    def health(self):
        return self.service.health()

    def close(self):
        self.service.stop()


class HttpTransport:
    """The same verbs through a live socket server."""

    name = "http"

    def __init__(self, service: TrainingService) -> None:
        self.service = service
        self.server = ServiceApiServer(
            service, TOKENS, admin_token=ADMIN_TOKEN
        ).start()
        self._clients = {
            principal: ServiceClient(self.server.url, token=token)
            for token, principal in TOKENS.items()
        }
        self._clients["admin"] = ServiceClient(
            self.server.url, token=ADMIN_TOKEN
        )

    def client(self, principal: str = "alice") -> ServiceClient:
        return self._clients[principal]

    def submit(self, principal, **kwargs):
        return self.client(principal).submit(principal, "t", **kwargs)

    def wait(self, job_id, timeout=30.0):
        return self.client().wait(job_id, timeout=timeout)

    def result(self, job_id):
        return self.client().result(job_id)

    def model(self, job_id):
        return self.client().model(job_id)

    def trace(self, job_id):
        return self.client().trace(job_id)

    def cancel(self, job_id):
        return self.client().cancel(job_id)

    def budgets(self):
        return self.client().budgets()

    def health(self):
        return self.client().health()

    def close(self):
        self.server.close()
        self.service.stop()


@pytest.fixture(params=["inproc", "http"])
def transport(request):
    service = make_service(workers=1).start()
    cls = InProcessTransport if request.param == "inproc" else HttpTransport
    t = cls(service)
    yield t
    t.close()


SUBMIT = dict(loss=LogisticLoss(1e-2), epsilon=EPS, passes=2,
              batch_size=50, seed=7)


def reference_release() -> np.ndarray:
    """The ground truth: the same job trained fully in process."""
    service = make_service(workers=1)
    record = service.submit("alice", "t", **SUBMIT)
    service.drain()
    weights = service.model(record.job_id)
    service.stop()
    return weights


REFERENCE = reference_release()


class TestConformance:
    """One body, both transports."""

    def test_submit_releases_bitwise_equal_weights(self, transport):
        view = transport.submit("alice", **SUBMIT)
        final = transport.wait(view.job_id)
        assert final.status is JobStatus.COMPLETED
        weights = transport.model(view.job_id)
        assert weights.dtype == np.float64
        assert np.array_equal(weights, REFERENCE)  # atol=0, bitwise

    def test_budget_is_charged_to_the_submitting_principal(self, transport):
        view = transport.submit("alice", **SUBMIT)
        transport.wait(view.job_id)
        statements = {(s.principal, s.table): s for s in transport.budgets()}
        alice = statements[("alice", "t")]
        bob = statements[("bob", "t")]
        assert alice.spent == (EPS, 0.0)
        assert bob.spent == (0.0, 0.0)
        assert alice.available_epsilon == pytest.approx(10.0 - EPS)

    def test_unknown_job_carries_the_same_code(self, transport):
        for verb in (transport.result, transport.model, transport.trace,
                     transport.cancel):
            with pytest.raises(UnknownJob) as excinfo:
                verb("job-99999")
            assert excinfo.value.code == "unknown_job"
        with pytest.raises(KeyError):  # legacy catch, both transports
            transport.result("job-99999")

    def test_unknown_table_carries_the_same_code(self, transport):
        if transport.name == "http":
            submit = lambda: transport.client().submit(  # noqa: E731
                "alice", "nope", **SUBMIT
            )
        else:
            submit = lambda: transport.service.submit(  # noqa: E731
                "alice", "nope", **SUBMIT
            )
        with pytest.raises(UnknownTable) as excinfo:
            submit()
        assert excinfo.value.code == "unknown_table"

    def test_over_budget_submit_returns_a_rejected_record(self, transport):
        # Admission denials are records, not exceptions — same through
        # both transports (the ledger stays untouched).
        view = transport.submit("alice", loss=LogisticLoss(1e-2),
                                epsilon=20.0, batch_size=50)
        assert view.status is JobStatus.REJECTED
        assert "overflow" in (view.error or "")
        statements = {(s.principal, s.table): s for s in transport.budgets()}
        assert statements[("alice", "t")].spent == (0.0, 0.0)

    def test_cancel_true_when_queued_false_when_done(self, transport):
        transport.service.stop()  # freeze dispatch so the job stays QUEUED
        view = transport.submit("alice", **SUBMIT)
        assert transport.cancel(view.job_id) is True
        assert transport.result(view.job_id).status is JobStatus.CANCELLED
        transport.service.start()
        done = transport.submit("bob", **SUBMIT)
        transport.wait(done.job_id)
        assert transport.cancel(done.job_id) is False

    def test_trace_round_trips_spans(self, transport):
        view = transport.submit("alice", **SUBMIT)
        transport.wait(view.job_id)
        trace = transport.trace(view.job_id)
        names = [span.name for span in trace.spans()]
        assert names[0] == "admit"
        assert "commit" in names
        # The wire payload is the same dict the in-process trace renders.
        reference = transport.service.trace(view.job_id)
        assert trace.payload() == reference.payload()

    def test_health_reports_workers_and_queues(self, transport):
        health = transport.health()
        assert health["status"] == "ok"
        assert health["workers"] == 1
        assert health["dispatch_running"] is True
        assert health["queue_depth"] == 0


class TestConcurrentSubmitters:
    def test_many_threads_share_one_socket(self):
        service = make_service(workers=2, cap=10.0).start()
        server = ServiceApiServer(service, TOKENS).start()
        views = []
        lock = threading.Lock()

        def submitter(principal: str, token: str, seeds) -> None:
            client = ServiceClient(server.url, token=token)
            for seed in seeds:
                view = client.submit(
                    principal, "t", LogisticLoss(1e-2),
                    epsilon=EPS, passes=1, batch_size=50, seed=seed,
                )
                with lock:
                    views.append((client, view.job_id, principal, seed))

        threads = [
            threading.Thread(
                target=submitter, args=(p, tok, range(i * 4, i * 4 + 4))
            )
            for i, (tok, p) in enumerate(TOKENS.items())
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        try:
            assert len(views) == 8
            for client, job_id, principal, seed in views:
                final = client.wait(job_id, timeout=60.0)
                assert final.status is JobStatus.COMPLETED
                assert final.principal == principal
                assert final.seed == seed
            # Budgets add up exactly: 4 jobs per principal.
            for s in service.budgets():
                assert s.spent == (4 * EPS, 0.0)
        finally:
            server.close()
            service.stop()


class TestHttpEdges:
    """Contracts only the socket transport has."""

    @pytest.fixture()
    def server(self):
        service = make_service(workers=1).start()
        api = ServiceApiServer(service, TOKENS, admin_token=ADMIN_TOKEN)
        api.start()
        yield api
        api.close()
        service.stop()

    def test_missing_token_is_unauthorized(self, server):
        client = ServiceClient(server.url)  # no token
        with pytest.raises(Unauthorized) as excinfo:
            client.budgets()
        assert excinfo.value.code == "unauthorized"
        assert excinfo.value.http_status == 401

    def test_unknown_token_is_unauthorized(self, server):
        client = ServiceClient(server.url, token="stolen")
        with pytest.raises(Unauthorized):
            client.budgets()

    def test_submit_for_another_principal_is_rejected(self, server):
        client = ServiceClient(server.url, token="alice-token")
        with pytest.raises(PrincipalMismatch) as excinfo:
            client.submit("bob", "t", LogisticLoss(1e-2), epsilon=EPS)
        assert excinfo.value.code == "principal_mismatch"
        # Nothing was admitted, nothing charged.
        for s in client.budgets():
            assert s.spent == (0.0, 0.0)

    def test_healthz_needs_no_token(self, server):
        with urllib.request.urlopen(server.url + "/v1/healthz") as response:
            payload = json.loads(response.read())
        assert payload["api"] == WIRE_FORMAT
        assert payload["status"] == "ok"

    def test_every_response_carries_the_version_tag(self, server):
        client = ServiceClient(server.url, token="alice-token")
        view = client.submit("alice", "t", LogisticLoss(1e-2),
                             epsilon=EPS, batch_size=50)
        request = urllib.request.Request(
            server.url + f"/v1/jobs/{view.job_id}",
            headers={"Authorization": "Bearer alice-token"},
        )
        with urllib.request.urlopen(request) as response:
            payload = json.loads(response.read())
        assert payload["api"] == WIRE_FORMAT
        assert check_envelope(payload) is payload
        with pytest.raises(ValueError, match="protocol versions"):
            check_envelope({"api": "repro-api/v999"})

    def test_job_view_round_trips_exactly(self, server):
        client = ServiceClient(server.url, token="alice-token")
        view = client.wait(
            client.submit("alice", "t", **SUBMIT).job_id
        )
        payload = view.to_payload()
        rebuilt = JobView.from_payload(payload)
        assert rebuilt.to_payload() == payload
        assert np.array_equal(rebuilt.model, view.model)
        assert rebuilt.receipt.parameters == view.receipt.parameters

    def test_error_envelope_shape_on_the_wire(self, server):
        request = urllib.request.Request(
            server.url + "/v1/jobs/job-99999",
            headers={"Authorization": "Bearer alice-token"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 404
        fault = json.loads(excinfo.value.read())
        assert fault["api"] == WIRE_FORMAT
        assert fault["error"]["code"] == "unknown_job"
        assert "job-99999" in fault["error"]["message"]

    def test_unknown_route_and_wrong_method(self, server):
        client = ServiceClient(server.url, token="alice-token")
        with pytest.raises(ServiceError) as excinfo:
            client._call("GET", "/v1/nope")
        assert excinfo.value.code == "unknown_route"
        with pytest.raises(ServiceError) as excinfo:
            client._call("POST", "/v1/budgets")
        assert excinfo.value.code == "method_not_allowed"

    def test_malformed_submit_body_is_invalid_request(self, server):
        request = urllib.request.Request(
            server.url + "/v1/jobs",
            data=b"{not json",
            headers={
                "Authorization": "Bearer alice-token",
                "Content-Type": "application/json",
            },
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        fault = json.loads(excinfo.value.read())
        assert fault["error"]["code"] == "invalid_request"

    def test_metrics_both_formats(self, server):
        client = ServiceClient(server.url, token="alice-token")
        client.submit("alice", "t", LogisticLoss(1e-2),
                      epsilon=EPS, batch_size=50)
        text = client.metrics("prometheus")
        assert "repro_http_requests_total" in text
        document = client.metrics("json")
        assert isinstance(document, dict)

    def test_cancel_not_cancellable_maps_to_false(self, server):
        client = ServiceClient(server.url, token="alice-token")
        view = client.wait(client.submit("alice", "t", **SUBMIT).job_id)
        # Raw endpoint raises; the client verb preserves the in-process
        # boolean contract.
        with pytest.raises(NotCancellable):
            client._call("POST", f"/v1/jobs/{view.job_id}/cancel")
        assert client.cancel(view.job_id) is False

    def test_admin_shutdown_requires_the_admin_token(self, server):
        tenant = ServiceClient(server.url, token="alice-token")
        with pytest.raises(ServiceError) as excinfo:
            tenant.shutdown()
        assert excinfo.value.code == "forbidden"
        admin = ServiceClient(server.url, token=ADMIN_TOKEN)
        admin.shutdown()
        assert server.shutdown_requested.wait(5.0)

    def test_client_retries_then_raises_unreachable(self):
        from repro.api.client import ApiUnreachable

        client = ServiceClient(
            "http://127.0.0.1:9", token="x", timeout=0.2,
            retries=1, backoff=0.0,
        )
        with pytest.raises(ApiUnreachable) as excinfo:
            client.health()
        assert excinfo.value.code == "unreachable"
        assert "2 attempt(s)" in str(excinfo.value)
