"""Gaussian random projection (Section 2, "Random Projection").

Known private-ERM convergence degrades with the dimension d (linearly for
ε-DP noise, sqrt(d) for Gaussian noise), so the paper projects MNIST from
784 to 50 dimensions before training. The projection is sampled *once*,
independently of the data, so neighbouring datasets remain neighbouring and
the privacy analysis is untouched; Johnson–Lindenstrauss guarantees the
utility loss is small.

We scale the Gaussian matrix by ``1/sqrt(k)`` (k the target dimension) so
expected squared norms are preserved, then re-normalize rows onto the unit
ball because the sensitivity analysis needs ``||x|| <= 1`` *after* the
projection too.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.data.preprocessing import normalize_rows
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int


class GaussianRandomProjection:
    """A fitted random linear map ``x -> T x`` from d to k dimensions."""

    def __init__(self, target_dimension: int, random_state: RandomState = None):
        self.target_dimension = check_positive_int(target_dimension, "target_dimension")
        self._rng = as_generator(random_state)
        self._matrix: Optional[np.ndarray] = None

    @property
    def matrix(self) -> np.ndarray:
        if self._matrix is None:
            raise RuntimeError("projection not fitted; call fit(input_dimension) first")
        return self._matrix

    def fit(self, input_dimension: int) -> "GaussianRandomProjection":
        """Sample the projection matrix ``T in R^{k x d}``."""
        check_positive_int(input_dimension, "input_dimension")
        if self.target_dimension > input_dimension:
            raise ValueError(
                f"target_dimension ({self.target_dimension}) exceeds input "
                f"dimension ({input_dimension})"
            )
        self._matrix = self._rng.standard_normal(
            (self.target_dimension, input_dimension)
        ) / np.sqrt(self.target_dimension)
        return self

    def transform(self, features: np.ndarray, renormalize: bool = True) -> np.ndarray:
        """Apply the projection; re-normalize rows onto the unit ball.

        ``renormalize=False`` returns the raw projection (JL analysis);
        the default keeps the privacy precondition ``||x|| <= 1`` intact.
        """
        X = np.asarray(features, dtype=np.float64)
        projected = X @ self.matrix.T
        if renormalize:
            return normalize_rows(projected)
        return projected

    def fit_transform(self, features: np.ndarray, renormalize: bool = True) -> np.ndarray:
        X = np.asarray(features, dtype=np.float64)
        return self.fit(X.shape[1]).transform(X, renormalize)


def project_dataset(
    dataset: Dataset,
    target_dimension: int,
    random_state: RandomState = None,
    projection: Optional[GaussianRandomProjection] = None,
) -> tuple[Dataset, GaussianRandomProjection]:
    """Project a dataset, returning the fitted projection for reuse.

    The test set must be transformed with the *same* matrix as the training
    set — pass the returned projection back in for the second call.
    """
    if projection is None:
        projection = GaussianRandomProjection(target_dimension, random_state)
        projection.fit(dataset.dimension)
    projected = Dataset(
        name=f"{dataset.name}-proj{target_dimension}",
        features=projection.transform(dataset.features),
        labels=dataset.labels,
        num_classes=dataset.num_classes,
    )
    return projected, projection
