"""Run the documentation's quickstart commands so the docs cannot rot.

Usage::

    python tools/check_docs.py README.md docs/architecture.md docs/operations.md

Extracts every fenced ``console`` block from the given markdown files
and executes the ``$ repro ...`` lines in it, in order, all in one
shared scratch directory — so a ``repro serve --state-dir state`` in
the README leaves the state a later ``repro trace ... --state-dir
state`` (even in a different file: pass the files in reading order)
expects to find. Exits 1 on the first failing command.

What counts as a command: a line starting ``$ `` inside a ```` ```console ````
fence. Only ``repro ...`` commands are executed (rewritten to
``<python> -m repro ...`` so the installed entry point is not
required); anything else (``pip install``, ``python -m pytest``) is
environment-dependent setup and is skipped with a note. Lines not
starting with ``$`` are expected output and ignored — the checker
asserts commands *run*, not that their timings reproduce.
"""

from __future__ import annotations

import os
import pathlib
import re
import shlex
import subprocess
import sys
import tempfile

TIMEOUT_SECONDS = 120
FENCE = re.compile(r"^```console\s*$")


def console_commands(markdown: str):
    """Yield the ``$``-prefixed command lines of every console block."""
    in_block = False
    for line in markdown.splitlines():
        if in_block:
            if line.startswith("```"):
                in_block = False
            elif line.startswith("$ "):
                yield line[2:].strip()
        elif FENCE.match(line):
            in_block = True


def run_file(path: pathlib.Path, workdir: pathlib.Path, repo: pathlib.Path) -> int:
    # The commands run from a scratch cwd, so the src tree must be on the
    # child's path absolutely (a pip-installed package also just works).
    env = dict(os.environ)
    src = str(repo / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    failures = 0
    for command in console_commands(path.read_text(encoding="utf-8")):
        if not command.startswith("repro "):
            print(f"  skip  {command}  (not a repro command)")
            continue
        argv = [sys.executable, "-m", "repro"] + shlex.split(command)[1:]
        print(f"  run   {command}")
        try:
            result = subprocess.run(
                argv,
                cwd=workdir,
                env=env,
                capture_output=True,
                text=True,
                timeout=TIMEOUT_SECONDS,
            )
        except subprocess.TimeoutExpired:
            print(f"  FAIL  {command}: timed out after {TIMEOUT_SECONDS}s")
            failures += 1
            continue
        if result.returncode != 0:
            print(f"  FAIL  {command}: exit {result.returncode}")
            sys.stdout.write(result.stdout)
            sys.stderr.write(result.stderr)
            failures += 1
    return failures


def main(argv) -> int:
    if not argv:
        print("usage: check_docs.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    repo = pathlib.Path(__file__).resolve().parent.parent
    failures = 0
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as scratch:
        workdir = pathlib.Path(scratch)
        for name in argv:
            path = pathlib.Path(name)
            print(f"{path}:")
            failures += run_file(path, workdir, repo)
    if failures:
        print(f"\n{failures} documented command(s) failed")
        return 1
    print("\nall documented commands ran")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
