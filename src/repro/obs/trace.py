"""Per-job lifecycle traces: monotonic-clock spans from admit to release.

A :class:`JobTrace` is a gapless sequence of named :class:`Span`\\ s
recording where a training job spent its time inside the service:

========== =====================================================================
``admit``   budget reserve + admission checks, inside the scheduler's
            admission lock
``queued``  waiting in the priority queue for a worker to claim the table
``claim``   between a worker claiming the window and the scan starting
            (group formation, UDA preparation)
``scan``    the shared scan itself; carries ``pages``/``retries`` and,
            for elevator rides, ``boarding_offset``/``epochs_ridden``
``epilogue`` sensitivity derivation + noise sampling after the scan
``commit``  ledger commit + receipt/record publication
``wal_sync`` trailing span: waiting for the window's durability sync
            (appended live after the record is journalled, so it is the
            one span absent from the durable payload)
========== =====================================================================

Gaplessness is by construction, not by discipline: :meth:`JobTrace.enter`
closes whatever span is open *at the new span's start instant*, so two
adjacent spans always share a boundary timestamp and a complete trace
has no holes and no negative durations. Attributes passed to ``enter``/
``close`` attach to the span being **closed** — the caller knows a
scan's page count only once the scan is over.

The clock is ``time.perf_counter()``: monotonic, so durations are
trustworthy, but *not* wall time and not comparable across processes.
Payloads round-trip bitwise through JSON (floats serialize via their
shortest ``repr``, which ``json`` reads back to the identical float64).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Span", "JobTrace", "SPAN_ORDER"]

#: Canonical span taxonomy in lifecycle order (documentation + test aid;
#: a trace may legitimately omit the tail — e.g. a rejected job stops at
#: ``admit`` — but never reorder).
SPAN_ORDER = (
    "admit", "queued", "claim", "scan", "epilogue", "commit", "wal_sync",
)

_clock = time.perf_counter


@dataclass
class Span:
    """One closed phase of a job's lifecycle. ``start``/``end`` are
    ``perf_counter`` instants; ``attrs`` are JSON-native scalars."""

    name: str
    start: float
    end: float
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def payload(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Span":
        return cls(
            name=str(payload["name"]),
            start=float(payload["start"]),
            end=float(payload["end"]),
            attrs=dict(payload.get("attrs", {})),
        )


class JobTrace:
    """A thread-safe, gapless span list for one job.

    At most one span is open at a time. Recording is O(1) per call and
    happens at phase boundaries only — never inside the scan loop.
    """

    __slots__ = ("_lock", "_spans", "_open_name", "_open_start")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._open_name: Optional[str] = None
        self._open_start: float = 0.0

    # -- recording ---------------------------------------------------------------

    def enter(self, name: str, **attrs: object) -> Optional[Span]:
        """Open span ``name`` now; close any currently-open span at the
        same instant (``attrs`` attach to the span being closed).
        Returns the closed span, if there was one."""
        now = _clock()
        with self._lock:
            closed = self._close_locked(now, attrs)
            self._open_name = name
            self._open_start = now
            return closed

    def close(self, **attrs: object) -> Optional[Span]:
        """Close the open span (idempotent: a no-op when nothing is
        open). Ends the trace until the next ``enter``/``append``."""
        with self._lock:
            return self._close_locked(_clock(), attrs)

    def append(self, name: str, **attrs: object) -> Span:
        """Add an already-finished span ending now and starting where the
        previous span ended (keeping the trace gapless). Used for the
        trailing ``wal_sync`` span, recorded after the record has been
        journalled."""
        now = _clock()
        with self._lock:
            if self._open_name is not None:
                self._close_locked(now, {})
            start = self._spans[-1].end if self._spans else now
            span = Span(name=name, start=start, end=now, attrs=dict(attrs))
            self._spans.append(span)
            return span

    def _close_locked(self, now: float, attrs: Dict[str, object]) -> Optional[Span]:
        if self._open_name is None:
            return None
        span = Span(
            name=self._open_name,
            start=self._open_start,
            end=now,
            attrs=dict(attrs),
        )
        self._spans.append(span)
        self._open_name = None
        return span

    # -- inspection --------------------------------------------------------------

    @property
    def current(self) -> Optional[str]:
        """Name of the open span, or None when the trace is closed."""
        with self._lock:
            return self._open_name

    def spans(self) -> List[Span]:
        """Snapshot of the closed spans, in order."""
        with self._lock:
            return list(self._spans)

    def span(self, name: str) -> Optional[Span]:
        """The last closed span with this name, if any."""
        with self._lock:
            for candidate in reversed(self._spans):
                if candidate.name == name:
                    return candidate
        return None

    def names(self) -> List[str]:
        with self._lock:
            return [span.name for span in self._spans]

    @property
    def duration(self) -> float:
        """Closed-span extent: last end minus first start (0.0 if empty)."""
        with self._lock:
            if not self._spans:
                return 0.0
            return self._spans[-1].end - self._spans[0].start

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- serialization -----------------------------------------------------------

    def payload(self) -> dict:
        """JSON-native dump of the closed spans (an open span, if any, is
        deliberately not serialized — it has no end yet)."""
        with self._lock:
            return {"spans": [span.payload() for span in self._spans]}

    @classmethod
    def from_payload(cls, payload: dict) -> "JobTrace":
        trace = cls()
        trace._spans = [
            Span.from_payload(entry) for entry in payload.get("spans", ())
        ]
        return trace
