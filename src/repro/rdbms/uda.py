"""The User-Defined Aggregate (UDA) contract (Section 4.2).

PostgreSQL-style UDAs are defined by three functions over an *aggregation
state*:

* ``initialize`` — create the state (for AVG: ``(sum, count) = (0, 0)``;
  for SGD: the model ``w`` handed in by the front-end controller);
* ``transition`` — fold one tuple into the state (for AVG: add; for SGD:
  accumulate the gradient, stepping ``w`` whenever a mini-batch completes);
* ``terminate`` — produce the aggregate's value (AVG: ``sum/count``; SGD:
  the epoch's final ``w``).

:class:`AvgUDA` is the reference aggregate the paper uses to explain the
architecture; :class:`SGDUDA` is the Bismarck epoch; the private-baseline
variants (noise inside ``transition``) live in :mod:`repro.rdbms.bismarck`
because they are precisely the "deep code changes" being measured.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.optim.losses import Loss, fusion_groups
from repro.optim.projection import IdentityProjection, Projection, rows_projector
from repro.optim.schedules import StepSizeSchedule
from repro.utils.validation import check_positive_int


class UDA(abc.ABC):
    """The three-function aggregate contract.

    ``transition_batch`` is the optional fourth function the vectorized
    executor path calls with ``(X_block, y_block)`` chunks from
    ``scan_chunks``. Its default folds the block one tuple at a time
    through :meth:`transition`, so every existing UDA — including the
    private-baseline UDAs in :mod:`repro.rdbms.bismarck` — works unchanged
    on the chunked stream; aggregates with a matrix form override it for
    the actual speedup.
    """

    @abc.abstractmethod
    def initialize(self, **kwargs: Any) -> Any:
        """Create a fresh aggregation state."""

    @abc.abstractmethod
    def transition(self, state: Any, features: np.ndarray, label: float) -> Any:
        """Fold one tuple into the state; returns the updated state."""

    def transition_batch(
        self, state: Any, features: np.ndarray, labels: np.ndarray
    ) -> Any:
        """Fold a block of tuples into the state; returns the updated state.

        Default: a per-tuple loop over :meth:`transition` (identical
        semantics, no speedup).
        """
        for row in range(features.shape[0]):
            state = self.transition(state, features[row], float(labels[row]))
        return state

    @abc.abstractmethod
    def terminate(self, state: Any) -> Any:
        """Finish the aggregate and return its value."""


class AvgUDA(UDA):
    """The standard SQL AVG over the label column — the paper's warm-up
    example for explaining the UDA architecture."""

    def initialize(self, **kwargs: Any) -> tuple[float, int]:
        return (0.0, 0)

    def transition(
        self, state: tuple[float, int], features: np.ndarray, label: float
    ) -> tuple[float, int]:
        total, count = state
        return (total + float(label), count + 1)

    def transition_batch(
        self, state: tuple[float, int], features: np.ndarray, labels: np.ndarray
    ) -> tuple[float, int]:
        total, count = state
        return (total + float(np.sum(labels)), count + int(labels.shape[0]))

    def terminate(self, state: tuple[float, int]) -> float:
        total, count = state
        if count == 0:
            raise ValueError("AVG over zero tuples is undefined")
        return total / count


@dataclass
class SGDState:
    """The SGD aggregation state (Section 4.2's description, verbatim).

    Holds the model, a temporary accumulated gradient, and counters for
    examples and mini-batches seen — when a mini-batch completes, the
    transition function applies the accumulated gradient at the proper
    step size.
    """

    model: np.ndarray
    accumulated_gradient: np.ndarray
    examples_in_batch: int
    batches_completed: int
    global_step_offset: int

    @property
    def next_step_index(self) -> int:
        """1-based global index of the *next* mini-batch update."""
        return self.global_step_offset + self.batches_completed + 1


class SGDUDA(UDA):
    """One SGD epoch as a UDA — the heart of Bismarck.

    The front-end controller passes the previous epoch's model to
    ``initialize`` and a global step offset so decreasing schedules continue
    across epochs. ``terminate`` flushes a trailing partial mini-batch
    (matching Bismarck's behaviour of not losing the tail tuples).
    """

    def __init__(
        self,
        loss: Loss,
        schedule: StepSizeSchedule,
        batch_size: int = 1,
        projection: Optional[Projection] = None,
    ):
        self.loss = loss
        self.schedule = schedule
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.projection = projection if projection is not None else IdentityProjection()
        #: Gradient updates applied during the lifetime of this UDA object;
        #: the cost model charges per-update work through this counter.
        self.updates_applied = 0
        # Cached schedule.rates vector, grown geometrically: the streaming
        # UDA does not know its total step count up front, but
        # rates(n)[t-1] == rate(t) exactly (schedule property tests), so
        # serving steps from the cache instead of a per-step rate(t) call
        # is a pure speedup.
        self._rates_cache: Optional[np.ndarray] = None

    def initialize(
        self, model: Optional[np.ndarray] = None, dimension: Optional[int] = None,
        global_step_offset: int = 0, **kwargs: Any,
    ) -> SGDState:
        if model is None:
            if dimension is None:
                raise ValueError("initialize needs either a model or a dimension")
            model = np.zeros(int(dimension), dtype=np.float64)
        model = np.array(model, dtype=np.float64, copy=True)
        return SGDState(
            model=self.projection(model),
            accumulated_gradient=np.zeros_like(model),
            examples_in_batch=0,
            batches_completed=0,
            global_step_offset=int(global_step_offset),
        )

    def transition(self, state: SGDState, features: np.ndarray, label: float) -> SGDState:
        gradient = self.loss.gradient(state.model, features, label)
        state.accumulated_gradient += gradient
        state.examples_in_batch += 1
        if state.examples_in_batch >= self.batch_size:
            self._apply_batch(state)
        return state

    def transition_batch(
        self, state: SGDState, features: np.ndarray, labels: np.ndarray
    ) -> SGDState:
        """Fold a tuple block in mini-batch-sized vectorized steps.

        Each segment stops at the next mini-batch boundary, so the model is
        stepped at exactly the same tuple positions — and through the same
        ``_apply_batch``/``_adjust_gradient`` machinery, preserving the
        noisy-UDA hook and all counters — as the per-tuple path. The only
        difference is that a segment's gradient sum is one
        ``Loss.batch_gradient`` contraction instead of per-tuple calls,
        which agrees with the scalar accumulation to floating-point
        rounding.
        """
        n = int(features.shape[0])
        start = 0
        while start < n:
            take = min(self.batch_size - state.examples_in_batch, n - start)
            segment_X = features[start : start + take]
            segment_y = labels[start : start + take]
            mean = self.loss.batch_gradient(state.model, segment_X, segment_y)
            state.accumulated_gradient += mean * take
            state.examples_in_batch += take
            start += take
            if state.examples_in_batch >= self.batch_size:
                self._apply_batch(state)
        return state

    def terminate(self, state: SGDState) -> np.ndarray:
        if state.examples_in_batch > 0:
            self._apply_batch(state)
        return state.model

    # -- internals ------------------------------------------------------------

    def _rate(self, t: int) -> float:
        """Step size for update ``t``, served from the cached rates vector."""
        cache = self._rates_cache
        if cache is None or t > cache.shape[0]:
            total = max(t, 64 if cache is None else 2 * cache.shape[0])
            self._rates_cache = cache = self.schedule.rates(total)
        return float(cache[t - 1])

    def _apply_batch(self, state: SGDState) -> None:
        eta = self._rate(state.next_step_index)
        mean_gradient = state.accumulated_gradient / state.examples_in_batch
        mean_gradient = self._adjust_gradient(state, mean_gradient)
        state.model = self.projection(state.model - eta * mean_gradient)
        state.accumulated_gradient[:] = 0.0
        state.examples_in_batch = 0
        state.batches_completed += 1
        self.updates_applied += 1

    def _adjust_gradient(self, state: SGDState, gradient: np.ndarray) -> np.ndarray:
        """Hook for subclasses; the noisy baselines override this.

        This one method is the entire integration surface the white-box
        algorithms need to modify — see Figure 1 (C) and
        :class:`repro.rdbms.bismarck.NoisySGDUDA`.
        """
        return gradient


@dataclass
class MultiSGDState:
    """The fused K-model SGD aggregation state.

    The per-model ``model``/``accumulated_gradient`` vectors of
    :class:`SGDState` become ``(K, d)`` matrices; the batch counters stay
    scalar because the fused scan steps every model at the same tuple
    positions (shared batch size — that lockstep is what lets one scan
    feed K models).
    """

    models: np.ndarray
    accumulated_gradient: np.ndarray
    examples_in_batch: int
    batches_completed: int
    global_step_offset: int

    @property
    def next_step_index(self) -> int:
        """1-based global index of the *next* mini-batch update."""
        return self.global_step_offset + self.batches_completed + 1

    @property
    def num_models(self) -> int:
        return int(self.models.shape[0])


class MultiSGDUDA(UDA):
    """K SGD epochs as ONE aggregate — the Bismarck shared-scan trick.

    Classic in-RDBMS analytics amortizes table scans by evaluating many
    aggregates over one tuple stream; this UDA does the same for SGD
    models: a single ``SELECT multi_sgd_agg(...)`` trains a whole
    hyper-parameter grid, paying the scan (and its page requests) once
    instead of K times. Per-model heterogeneity mirrors
    :class:`repro.optim.psgd.ModelSpec`: each model has its own loss
    (regularization), step-size schedule, projection, and optional
    per-batch ``noise_sampler`` (the white-box baselines' hook,
    ``(step_index, dimension) -> vector``). The batch size is shared — it
    defines the lockstep mini-batch boundaries of the scan.

    Per model, the result is identical (to floating-point rounding of the
    batched contractions, bounded at 1e-12 by the multi-model equivalence
    suite) to running K separate :class:`SGDUDA` epochs over the same
    shuffled stream.

    ``gradient_mode`` picks how strong that identity is:

    * ``"grouped"`` (default) — fusable losses collapse into grouped
      ``batch_gradient_multi`` GEMMs and projections run through the
      compiled row projector. Fastest; agrees with K separate
      :class:`SGDUDA` runs to 1e-12 (BLAS summation order).
    * ``"exact"`` — each model's gradient is its own loss's
      ``batch_gradient`` call and each row projects through its own
      :class:`~repro.optim.projection.Projection` object: the *same*
      sequence of floating-point operations a standalone :class:`SGDUDA`
      performs, so every model is **bitwise** identical to its solo run
      while the scan (and its page requests) is still paid once. This is
      the mode the training service's scheduler uses — a job's released
      weights must not depend on which other tenants it happened to share
      a scan with.
    """

    def __init__(
        self,
        losses: Sequence[Loss],
        schedules: Sequence[StepSizeSchedule],
        batch_size: int = 1,
        projections: Optional[Sequence[Optional[Projection]]] = None,
        noise_samplers: Optional[Sequence[Optional[Callable[[int, int], np.ndarray]]]] = None,
        gradient_mode: str = "grouped",
    ):
        self.losses = list(losses)
        self.schedules = list(schedules)
        if len(self.losses) == 0:
            raise ValueError("at least one model is required")
        if len(self.schedules) != len(self.losses):
            raise ValueError(
                f"got {len(self.losses)} losses but {len(self.schedules)} schedules"
            )
        K = len(self.losses)
        self.batch_size = check_positive_int(batch_size, "batch_size")
        if projections is None:
            projections = [None] * K
        if len(projections) != K:
            raise ValueError(f"projections must have {K} entries")
        self.projections: list[Projection] = [
            p if p is not None else IdentityProjection() for p in projections
        ]
        if noise_samplers is None:
            noise_samplers = [None] * K
        if len(noise_samplers) != K:
            raise ValueError(f"noise_samplers must have {K} entries")
        self.noise_samplers = list(noise_samplers)
        if gradient_mode not in ("grouped", "exact"):
            raise ValueError(
                f"gradient_mode must be 'grouped' or 'exact', got {gradient_mode!r}"
            )
        self.gradient_mode = gradient_mode
        #: Scan-level mini-batch updates applied (each steps all K models).
        self.updates_applied = 0
        #: Total noise-sampler invocations across models.
        self.noise_draws = 0
        # Execution plan: fusable gradient groups + compiled row projector
        # + per-model cached rate vectors (grown on demand). Exact mode
        # bypasses both the groups and the compiled projector — per-model
        # calls are what make it bitwise-reproducible.
        self._groups = fusion_groups(self.losses)
        self._projector = rows_projector(self.projections) if gradient_mode == "grouped" else None
        self._rates_matrix: Optional[np.ndarray] = None

    @property
    def num_models(self) -> int:
        return len(self.losses)

    # -- the three-function contract -------------------------------------------

    def initialize(
        self,
        models: Optional[np.ndarray] = None,
        dimension: Optional[int] = None,
        global_step_offset: int = 0,
        **kwargs: Any,
    ) -> MultiSGDState:
        K = self.num_models
        if models is None:
            if dimension is None:
                raise ValueError("initialize needs either models or a dimension")
            models = np.zeros((K, int(dimension)), dtype=np.float64)
        models = np.array(models, dtype=np.float64, copy=True)
        if models.ndim != 2 or models.shape[0] != K:
            raise ValueError(
                f"models must have shape ({K}, d), got {models.shape}"
            )
        if self.gradient_mode == "exact":
            for k, projection in enumerate(self.projections):
                models[k] = projection(models[k])
        elif self._projector is not None:
            models = self._projector(models)
        return MultiSGDState(
            models=models,
            accumulated_gradient=np.zeros_like(models),
            examples_in_batch=0,
            batches_completed=0,
            global_step_offset=int(global_step_offset),
        )

    def transition(
        self, state: MultiSGDState, features: np.ndarray, label: float
    ) -> MultiSGDState:
        """Per-tuple reference path: one scalar gradient per model."""
        for k, loss in enumerate(self.losses):
            state.accumulated_gradient[k] += loss.gradient(
                state.models[k], features, label
            )
        state.examples_in_batch += 1
        if state.examples_in_batch >= self.batch_size:
            self._apply_batch(state)
        return state

    def transition_batch(
        self, state: MultiSGDState, features: np.ndarray, labels: np.ndarray
    ) -> MultiSGDState:
        """Fold a tuple block in mini-batch-sized *fused* steps.

        Same segment discipline as :meth:`SGDUDA.transition_batch` — the
        models step at exactly the same tuple positions as the per-tuple
        path — but each segment's K gradient sums collapse into the
        grouped ``batch_gradient_multi`` contractions.
        """
        n = int(features.shape[0])
        start = 0
        while start < n:
            take = min(self.batch_size - state.examples_in_batch, n - start)
            segment_X = features[start : start + take]
            segment_y = labels[start : start + take]
            if self.gradient_mode == "exact":
                # Per-model single-model kernels: bitwise-identical floats
                # to each model's standalone SGDUDA epoch.
                for k, loss in enumerate(self.losses):
                    mean_k = loss.batch_gradient(state.models[k], segment_X, segment_y)
                    state.accumulated_gradient[k] += mean_k * take
            else:
                for rep, idx, lams in self._groups:
                    mean = rep.batch_gradient_multi(
                        state.models[idx], segment_X, segment_y, regularization=lams
                    )
                    state.accumulated_gradient[idx] += mean * take
            state.examples_in_batch += take
            start += take
            if state.examples_in_batch >= self.batch_size:
                self._apply_batch(state)
        return state

    def terminate(self, state: MultiSGDState) -> np.ndarray:
        if state.examples_in_batch > 0:
            self._apply_batch(state)
        return state.models

    # -- internals ------------------------------------------------------------

    def _rates(self, t: int) -> np.ndarray:
        """The (K,) step-size column for update ``t`` (cached, grown)."""
        matrix = self._rates_matrix
        if matrix is None or t > matrix.shape[1]:
            total = max(t, 64 if matrix is None else 2 * matrix.shape[1])
            self._rates_matrix = matrix = np.stack(
                [schedule.rates(total) for schedule in self.schedules]
            )
        return matrix[:, t - 1]

    def _apply_batch(self, state: MultiSGDState) -> None:
        step = state.next_step_index
        eta = self._rates(step)
        mean_gradient = state.accumulated_gradient / state.examples_in_batch
        mean_gradient = self._adjust_gradient(state, mean_gradient)
        if self.gradient_mode == "exact":
            # Scalar step size + per-model projection object, mirroring
            # SGDUDA._apply_batch operation for operation.
            models = state.models
            for k, projection in enumerate(self.projections):
                models[k] = projection(models[k] - float(eta[k]) * mean_gradient[k])
        else:
            models = state.models - eta[:, None] * mean_gradient
            if self._projector is not None:
                models = self._projector(models)
        state.models = models
        state.accumulated_gradient[:] = 0.0
        state.examples_in_batch = 0
        state.batches_completed += 1
        self.updates_applied += 1

    def _adjust_gradient(
        self, state: MultiSGDState, gradient: np.ndarray
    ) -> np.ndarray:
        """Per-model noise hook — the white-box integration surface.

        Each model's sampler fires once per completed mini-batch with the
        same ``(step_index, dimension)`` arguments its standalone
        :class:`repro.rdbms.bismarck.NoisySGDUDA` would have seen.
        """
        for k, sampler in enumerate(self.noise_samplers):
            if sampler is not None:
                self.noise_draws += 1
                gradient[k] = gradient[k] + sampler(
                    state.next_step_index, gradient.shape[1]
                )
        return gradient


class ElevatorRider:
    """One model riding a shared scan cursor from its boarding offset.

    Wraps a private :class:`SGDUDA` (or noisy subclass) and replays the
    front-end controller's epoch discipline *relative to the rider's own
    boarding point*: the rider folds every canonical chunk the cursor
    delivers, and after exactly ``num_tuples`` tuples — which, because
    boarding happens on the chunk grid, lands precisely back at its
    boarding chunk — it terminates the epoch (flushing a trailing
    partial mini-batch) and re-initializes with the epoch's model and an
    advanced ``global_step_offset``, the literal calls
    ``BismarckSession.run_sgd`` makes through ``run_aggregate``. The
    result is bitwise-by-construction: a rider that boarded at offset
    ``p`` executes the *same sequence of floating-point operations* as a
    solo ``run_sgd(..., start_offset=p)`` over the same rotated chunks,
    and its noise/schedule streams consume exactly what that solo run
    would.
    """

    def __init__(
        self,
        uda: SGDUDA,
        *,
        num_tuples: int,
        dimension: int,
        passes: int,
        boarding_offset: int,
    ):
        self.uda = uda
        self.num_tuples = check_positive_int(num_tuples, "num_tuples")
        self.passes = check_positive_int(passes, "passes")
        self.boarding_offset = int(boarding_offset)
        self.epochs_completed = 0
        self.tuples_into_epoch = 0
        self.global_step_offset = 0
        #: Set when the last epoch terminates; the released weights.
        self.model: Optional[np.ndarray] = None
        self.state = uda.initialize(
            dimension=dimension, global_step_offset=0
        )

    @property
    def done(self) -> bool:
        return self.epochs_completed >= self.passes

    def fold(self, features: np.ndarray, labels: np.ndarray) -> None:
        """Fold one canonical chunk; close the epoch if it completes it."""
        if self.done:
            raise RuntimeError("rider has already completed its ride")
        take = int(labels.shape[0])
        if self.tuples_into_epoch + take > self.num_tuples:
            raise RuntimeError(
                "chunk spans the rider's epoch boundary — riders must "
                "board on the canonical chunk grid"
            )
        self.state = self.uda.transition_batch(self.state, features, labels)
        self.tuples_into_epoch += take
        if self.tuples_into_epoch == self.num_tuples:
            model = self.uda.terminate(self.state)
            self.epochs_completed += 1
            self.tuples_into_epoch = 0
            # ceil(m / b) updates per epoch, exactly run_sgd's advance.
            self.global_step_offset += -(-self.num_tuples // self.uda.batch_size)
            if self.done:
                self.model = model
            else:
                self.state = self.uda.initialize(
                    model=model, global_step_offset=self.global_step_offset
                )


class ElevatorMultiSGDUDA:
    """K independent SGD rides over ONE continuous cursor loop.

    The shared-cursor ("elevator") counterpart of :class:`MultiSGDUDA`.
    The fused aggregate scans in *lockstep*: one shared batch size, one
    shared epoch phase, so a window's jobs must agree on the scan-
    compatibility key and late arrivals wait for the next window. The
    elevator drops the lockstep: each rider carries its own
    :class:`SGDUDA` state with its own batch phase, boarding offset, and
    epoch counter, so **any** job on the table can board the live cursor
    mid-flight — compatibility shrinks to the table itself (see
    ``repro.optim.psgd.elevator_compatibility_key``). The price is that
    per-rider gradients stay per-model calls instead of grouped GEMMs —
    which is exactly ``gradient_mode="exact"``, the mode the service
    already requires for its bitwise determinism contract.

    Drive it with a :class:`~repro.rdbms.executor.ScanCursor`: admit
    riders between chunks, fold each delivered chunk, collect completed
    riders. The scan (and its page requests) is paid once per cursor
    loop regardless of how many riders are aboard.
    """

    def __init__(self, *, num_tuples: int, dimension: int):
        self.num_tuples = check_positive_int(num_tuples, "num_tuples")
        self.dimension = check_positive_int(dimension, "dimension")
        self.riders: list[ElevatorRider] = []
        #: Riders admitted over the aggregate's lifetime.
        self.riders_admitted = 0

    @property
    def active(self) -> bool:
        return bool(self.riders)

    def admit(
        self, uda: SGDUDA, *, passes: int, boarding_offset: int
    ) -> ElevatorRider:
        """Board a new model at the cursor's current grid position."""
        rider = ElevatorRider(
            uda,
            num_tuples=self.num_tuples,
            dimension=self.dimension,
            passes=passes,
            boarding_offset=boarding_offset,
        )
        self.riders.append(rider)
        self.riders_admitted += 1
        return rider

    def fold_chunk(
        self, features: np.ndarray, labels: np.ndarray
    ) -> list[ElevatorRider]:
        """Fold one canonical chunk into every rider aboard; return the
        riders that completed their last epoch on this chunk."""
        completed: list[ElevatorRider] = []
        for rider in self.riders:
            rider.fold(features, labels)
            if rider.done:
                completed.append(rider)
        if completed:
            self.riders = [rider for rider in self.riders if not rider.done]
        return completed
