"""Tests for the privacy accountant and budget splitting."""

from __future__ import annotations

import pytest

from repro.core.accountant import (
    PrivacyAccountant,
    PrivacyBudgetExceeded,
    split_evenly,
)
from repro.core.mechanisms import PrivacyParameters


class TestSplitEvenly:
    def test_ten_way_split(self):
        # The MNIST one-vs-rest split of Section 4.3.
        shares = split_evenly(PrivacyParameters(1.0, 1e-4), 10)
        assert len(shares) == 10
        assert all(s.epsilon == pytest.approx(0.1) for s in shares)
        assert all(s.delta == pytest.approx(1e-5) for s in shares)

    def test_single_part(self):
        shares = split_evenly(PrivacyParameters(2.0), 1)
        assert shares[0].epsilon == 2.0

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            split_evenly(PrivacyParameters(1.0), 0)


class TestSequentialAccounting:
    def test_spends_accumulate(self):
        acct = PrivacyAccountant(budget=PrivacyParameters(1.0, 1e-4))
        acct.spend(PrivacyParameters(0.3, 1e-5), label="a")
        acct.spend(PrivacyParameters(0.4, 2e-5), label="b")
        eps, delta = acct.total()
        assert eps == pytest.approx(0.7)
        assert delta == pytest.approx(3e-5)

    def test_budget_enforced(self):
        acct = PrivacyAccountant(budget=PrivacyParameters(0.5))
        acct.spend(PrivacyParameters(0.4))
        with pytest.raises(PrivacyBudgetExceeded):
            acct.spend(PrivacyParameters(0.2))

    def test_delta_budget_enforced(self):
        acct = PrivacyAccountant(budget=PrivacyParameters(10.0, 1e-6))
        with pytest.raises(PrivacyBudgetExceeded):
            acct.spend(PrivacyParameters(0.1, 1e-5))

    def test_remaining(self):
        acct = PrivacyAccountant(budget=PrivacyParameters(1.0, 1e-4))
        acct.spend(PrivacyParameters(0.25, 2e-5))
        remaining = acct.remaining()
        assert remaining.epsilon == pytest.approx(0.75)
        assert remaining.delta == pytest.approx(8e-5)

    def test_remaining_raises_when_exhausted(self):
        acct = PrivacyAccountant(budget=PrivacyParameters(0.5))
        acct.spend(PrivacyParameters(0.5))
        with pytest.raises(PrivacyBudgetExceeded):
            acct.remaining()

    def test_exact_budget_allowed(self):
        acct = PrivacyAccountant(budget=PrivacyParameters(1.0))
        for _ in range(10):
            acct.spend(PrivacyParameters(0.1))
        eps, _ = acct.total()
        assert eps == pytest.approx(1.0)

    def test_spend_labels_recorded(self):
        acct = PrivacyAccountant(budget=PrivacyParameters(1.0))
        acct.spend(PrivacyParameters(0.1), label="model-3")
        assert acct.spends[0].label == "model-3"


class TestParallelAccounting:
    def test_parallel_spends_cost_max(self):
        acct = PrivacyAccountant(budget=PrivacyParameters(1.0))
        for _ in range(5):
            acct.spend_parallel(PrivacyParameters(0.8), group="tuning")
        eps, _ = acct.total()
        assert eps == pytest.approx(0.8)

    def test_parallel_group_maximum_tracked(self):
        acct = PrivacyAccountant(budget=PrivacyParameters(1.0))
        acct.spend_parallel(PrivacyParameters(0.3), group="g")
        acct.spend_parallel(PrivacyParameters(0.6), group="g")
        acct.spend_parallel(PrivacyParameters(0.2), group="g")
        eps, _ = acct.total()
        assert eps == pytest.approx(0.6)

    def test_parallel_plus_sequential(self):
        acct = PrivacyAccountant(budget=PrivacyParameters(1.0))
        acct.spend_parallel(PrivacyParameters(0.5), group="train")
        acct.spend(PrivacyParameters(0.5), label="select")
        eps, _ = acct.total()
        assert eps == pytest.approx(1.0)
        with pytest.raises(PrivacyBudgetExceeded):
            acct.spend(PrivacyParameters(0.1))

    def test_parallel_budget_enforced(self):
        acct = PrivacyAccountant(budget=PrivacyParameters(0.5))
        with pytest.raises(PrivacyBudgetExceeded):
            acct.spend_parallel(PrivacyParameters(0.6), group="g")
